module Sim = Engine.Sim
module Time = Engine.Time
module Addr = Net.Addr
module Network = Net.Network
module Bitset = Util.Bitset

type gstate = {
  oifs : Bitset.t;  (* outgoing interfaces with downstream interest *)
  mutable local : bool;  (* application-level membership at this node *)
  mutable on_tree : bool;
  mutable leave_epoch : int;  (* invalidates stale leave timers *)
}

(* A group's recorded forwarding edges, child-indexed: [parents.(c)] is
   the ascending list of parents with an installed edge toward [c] —
   almost always empty or a singleton, transiently two mid-repair (a
   reroute can leave the old parent forwarding while the graft installs
   the new one). Replaces the former sorted pair-set: detaching a node's
   other parents and the has-a-parent test are O(degree) instead of a
   scan of the whole edge set, which is what a 100k-receiver join storm
   actually spends its time on. *)
type tree = {
  parents : Addr.node_id list array;
  mutable edge_count : int;
}

(* Shard seam (conservative parallel runs): when a graft or prune hop
   lands on a node this region does not own, the parent-side mutation is
   posted to the owning region instead of applied here, and a local
   mirror keeps this replica's recorded tree consistent for snapshots.
   [delay] is the hop's propagation delay — on a boundary link it is at
   least the shard lookahead, which is what makes the post admissible. *)
type bridge = {
  owns : Addr.node_id -> bool;
  post_graft :
    parent:Addr.node_id ->
    child:Addr.node_id ->
    group:Addr.group_id ->
    delay:Time.span ->
    unit;
  post_prune :
    parent:Addr.node_id ->
    child:Addr.node_id ->
    group:Addr.group_id ->
    delay:Time.span ->
    unit;
}

type t = {
  network : Network.t;
  arena : Net.Packet.arena;
  node_count : int;
  mutable oif_scratch : int array;
      (** reusable fan-out buffer: [handle] spills a group's outgoing
          interface set here so forwarding iterates a flat array instead
          of allocating a per-packet closure over the bitset *)
  leave_latency : Time.span;
  expedited_leave : bool;
  (* Group ids are dense (allocated by [fresh_group]), so the per-packet
     tables are arrays indexed by group — the forwarding path does plain
     loads instead of hashing. Rows of [state_rows] are node-indexed and
     allocated on a group's first touch. *)
  mutable src_of : Addr.node_id array;  (* -1 = unknown group *)
  mutable state_rows : gstate option array array;
  mutable delivered_by_group : int array;
  (* Derived views maintained incrementally on join/leave/graft/prune so
     [members] and [tree_edges] — queried every TopoSense decision epoch —
     don't fold the whole (node, group) table. Node and group ids are
     dense, so the sets are bitsets (updated in place). *)
  members_by_group : (Addr.group_id, Bitset.t) Hashtbl.t;
  edges_by_group : (Addr.group_id, tree) Hashtbl.t;
  (* Repair indexes, so a topology event only visits the groups it can
     have touched: groups keyed by their source (a group needs repair
     exactly when its source's routing table moved), groups keyed by the
     physical links their recorded edges ride (belt and braces for the
     link itself), and per group the detached set — on-tree nodes with no
     recorded parent edge, i.e. severed subtree roots and nodes whose
     graft is still in flight. *)
  groups_by_src : (Addr.node_id, Bitset.t) Hashtbl.t;
  groups_by_link : (Addr.node_id * Addr.node_id, Bitset.t) Hashtbl.t;
  detached_by_group : (Addr.group_id, Bitset.t) Hashtbl.t;
  mutable next_group : Addr.group_id;
  mutable repair_passes : int;
  mutable edges_repaired : int;
  (* Local memberships wiped by a node crash, remembered so recovery can
     re-issue the RPF joins that rebuild the node's group state. *)
  crashed_locals : (Addr.node_id, Addr.group_id list) Hashtbl.t;
  mutable bridge : bridge option;  (* shard seam; None in sequential runs *)
}

let link_key a b = if a < b then (a, b) else (b, a)

let get_set tbl key =
  match Hashtbl.find_opt tbl key with
  | Some s -> s
  | None ->
      let s = Bitset.create () in
      Hashtbl.add tbl key s;
      s

let grow_groups t g =
  let cap = Array.length t.src_of in
  if g >= cap then begin
    let ncap = max 8 (max (g + 1) (2 * cap)) in
    let nsrc = Array.make ncap (-1) in
    Array.blit t.src_of 0 nsrc 0 cap;
    t.src_of <- nsrc;
    let nrows = Array.make ncap [||] in
    Array.blit t.state_rows 0 nrows 0 cap;
    t.state_rows <- nrows;
    let ndel = Array.make ncap 0 in
    Array.blit t.delivered_by_group 0 ndel 0 cap;
    t.delivered_by_group <- ndel
  end

let add_member t ~group ~node = Bitset.add (get_set t.members_by_group group) node

let remove_member t ~group ~node =
  match Hashtbl.find_opt t.members_by_group group with
  | None -> ()
  | Some cur -> Bitset.remove cur node

let detached_add t ~group ~node =
  Bitset.add (get_set t.detached_by_group group) node

let detached_remove t ~group ~node =
  match Hashtbl.find_opt t.detached_by_group group with
  | None -> ()
  | Some cur -> Bitset.remove cur node

let state t node group =
  grow_groups t group;
  let row = t.state_rows.(group) in
  let row =
    if Array.length row > 0 then row
    else begin
      let r = Array.make t.node_count None in
      t.state_rows.(group) <- r;
      r
    end
  in
  match row.(node) with
  | Some s -> s
  | None ->
      let s =
        {
          oifs = Bitset.create ~capacity:8 ();
          local = false;
          on_tree = false;
          leave_epoch = 0;
        }
      in
      row.(node) <- Some s;
      s

let tree_of t group =
  match Hashtbl.find_opt t.edges_by_group group with
  | Some tr -> tr
  | None ->
      let tr = { parents = Array.make t.node_count []; edge_count = 0 } in
      Hashtbl.add t.edges_by_group group tr;
      tr

let add_edge t ~group ~parent ~child =
  let tr = tree_of t group in
  let ps = tr.parents.(child) in
  if not (List.mem parent ps) then begin
    (* keep ascending so iteration order matches the former sorted set *)
    tr.parents.(child) <- List.sort compare (parent :: ps);
    tr.edge_count <- tr.edge_count + 1
  end;
  Bitset.add (get_set t.groups_by_link (link_key parent child)) group;
  (* the child has a parent again *)
  detached_remove t ~group ~node:child

let remove_edge t ~group ~parent ~child =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> ()
  | Some tr ->
      let ps = tr.parents.(child) in
      if List.mem parent ps then begin
        tr.parents.(child) <- List.filter (fun p -> p <> parent) ps;
        tr.edge_count <- tr.edge_count - 1
      end;
      (* drop the group from the link index only when no recorded edge
         rides the link in either direction any more *)
      if not (List.mem child tr.parents.(parent)) then begin
        match Hashtbl.find_opt t.groups_by_link (link_key parent child) with
        | None -> ()
        | Some gs -> Bitset.remove gs group
      end;
      if (state t child group).on_tree then detached_add t ~group ~node:child

let source t ~group =
  if group < 0 || group >= Array.length t.src_of || t.src_of.(group) < 0 then
    invalid_arg "Multicast.Router: unknown group";
  t.src_of.(group)

let count_delivery t group =
  t.delivered_by_group.(group) <- t.delivered_by_group.(group) + 1

(* Data-plane forwarding, installed on every node; owns the packet
   handle. Local delivery borrows it; the fan-out sends a copy per
   outgoing interface except the last, which gets the original — so
   exactly one send consumes it, and a packet nobody wants is freed. *)
let handle t node (pkt : Net.Packet.t) ~in_iface =
  if not (Net.Packet.dst_is_multicast t.arena pkt) then
    Net.Packet.free t.arena pkt
  else begin
    let group = Net.Packet.dst_group t.arena pkt in
    let src = source t ~group in
    (* RPF: the packet must arrive over the interface on the unicast
       shortest path toward the source. Comparing neighbor ids avoids a
       neighbor->interface lookup on the per-packet path. *)
    let rpf_ok =
      match in_iface with
      | None -> node = src
      | Some i ->
          node <> src
          && Network.neighbor t.network ~node ~iface:i
             = Net.Routing.next_hop (Network.routing t.network) ~from:node
                 ~dst:src
    in
    if not rpf_ok then Net.Packet.free t.arena pkt
    else begin
      let st = state t node group in
      if st.local then begin
        count_delivery t group;
        Network.deliver_local t.network node pkt
      end;
      let inf = match in_iface with None -> -1 | Some i -> i in
      let card = Bitset.cardinal st.oifs in
      if Array.length t.oif_scratch < card then
        t.oif_scratch <- Array.make (max 8 (2 * card)) 0;
      let n = Bitset.fill_into st.oifs t.oif_scratch in
      let eligible = ref 0 in
      for k = 0 to n - 1 do
        if t.oif_scratch.(k) <> inf then incr eligible
      done;
      if !eligible = 0 then Net.Packet.free t.arena pkt
      else
        (* ascending interface order, as [Bitset.iter] walked it; copies
           keep the packet id, so traces see the same wire packet on
           every branch *)
        for k = 0 to n - 1 do
          let oif = t.oif_scratch.(k) in
          if oif <> inf then begin
            decr eligible;
            let p =
              if !eligible = 0 then pkt else Net.Packet.copy t.arena pkt
            in
            Network.send_on_iface t.network ~node ~iface:oif p
          end
        done
    end
  end

let leave_latency t = t.leave_latency
let expedited_leave t = t.expedited_leave

let fresh_group t ~source =
  let g = t.next_group in
  t.next_group <- t.next_group + 1;
  grow_groups t g;
  t.src_of.(g) <- source;
  Bitset.add (get_set t.groups_by_src source) g;
  g

let hop_delay t ~node ~parent =
  let iface = Network.iface_to t.network ~node ~neighbor:parent in
  Net.Link.prop_delay (Network.link_on_iface t.network ~node ~iface)

let rpf_parent t ~node ~src =
  Net.Routing.next_hop_opt (Network.routing t.network) ~from:node ~dst:src

(* Propagate a graft toward the source until an on-tree ancestor (or the
   source) absorbs it. Each hop takes the link's propagation delay. The
   in-flight hop revalidates against the routing tables when it lands:
   if a failure rerouted us meanwhile, the graft restarts along the new
   reverse path instead of installing a stale edge. *)
let rec graft t ~node ~group =
  let src = source t ~group in
  if node <> src then
    match rpf_parent t ~node ~src with
    | None -> () (* partitioned; the repair pass after reconnection retries *)
    | Some parent -> (
        let delay = hop_delay t ~node ~parent in
        match t.bridge with
        | Some b when not (b.owns parent) ->
            (* The hop crosses a shard boundary: the parent's region
               applies the real mutation (and continues the recursion
               toward the source there); this replica mirrors the edge
               so its tree snapshots stay whole. Sharded topologies are
               static, so the sequential closure's RPF revalidation is
               vacuous and the mirror can skip it. *)
            b.post_graft ~parent ~child:node ~group ~delay;
            ignore
              (Sim.schedule_after (Network.sim t.network) delay (fun () ->
                   mirror_graft t ~parent ~node ~group))
        | _ ->
            ignore
              (Sim.schedule_after (Network.sim t.network) delay (fun () ->
                   if rpf_parent t ~node ~src <> Some parent then begin
                     let st = state t node group in
                     if
                       st.on_tree
                       && (st.local || not (Bitset.is_empty st.oifs))
                     then graft t ~node ~group
                   end
                   else begin
                     detach_other_parents t ~group ~node ~keep:parent;
                     let pst = state t parent group in
                     let oif =
                       Network.iface_to t.network ~node:parent ~neighbor:node
                     in
                     if not (Bitset.mem pst.oifs oif) then begin
                       Bitset.add pst.oifs oif;
                       add_edge t ~group ~parent ~child:node
                     end;
                     if not pst.on_tree then begin
                       pst.on_tree <- true;
                       if parent <> src then detached_add t ~group ~node:parent;
                       graft t ~node:parent ~group
                     end
                   end)))

(* Prune upward: a node with no local member and no downstream interest
   leaves the tree and tells its parent after one hop delay. *)
and maybe_prune t ~node ~group =
  let src = source t ~group in
  let st = state t node group in
  if st.on_tree && (not st.local) && Bitset.is_empty st.oifs && node <> src
  then begin
    st.on_tree <- false;
    detached_remove t ~group ~node;
    match rpf_parent t ~node ~src with
    | None -> () (* detached by a partition; repair already cut the edge *)
    | Some parent -> (
        let delay = hop_delay t ~node ~parent in
        match t.bridge with
        | Some b when not (b.owns parent) ->
            (* Boundary hop: the owning region runs the real prune (and
               its upward recursion); mirror the edge removal here. *)
            b.post_prune ~parent ~child:node ~group ~delay;
            ignore
              (Sim.schedule_after (Network.sim t.network) delay (fun () ->
                   mirror_prune t ~parent ~node ~group))
        | _ ->
            ignore
              (Sim.schedule_after (Network.sim t.network) delay (fun () ->
                   let pst = state t parent group in
                   let oif =
                     Network.iface_to t.network ~node:parent ~neighbor:node
                   in
                   if Bitset.mem pst.oifs oif then begin
                     Bitset.remove pst.oifs oif;
                     remove_edge t ~group ~parent ~child:node
                   end;
                   maybe_prune t ~node:parent ~group)))
  end

(* Detach [node] from any recorded parent other than [keep]: a reroute can
   leave the old parent still forwarding to us while a graft installs the
   new one. Never fires while routing is static. O(recorded parents of
   [node]) — the child-indexed tree makes this a local lookup instead of
   a scan of every edge in the group. *)
(* This replica's half of a boundary graft hop, at the hop's landing
   time: record the edge and the unowned parent's interface bit so local
   tree snapshots (Discovery captures, [tree_edges]) include the stub's
   single ingress edge. No recursion — the owning region grafts the
   parent onward. *)
and mirror_graft t ~parent ~node ~group =
  detach_other_parents t ~group ~node ~keep:parent;
  let pst = state t parent group in
  let oif = Network.iface_to t.network ~node:parent ~neighbor:node in
  if not (Bitset.mem pst.oifs oif) then begin
    Bitset.add pst.oifs oif;
    add_edge t ~group ~parent ~child:node
  end;
  pst.on_tree <- true

(* Likewise for a boundary prune: drop the mirrored edge, leave the
   parent's own prune decision to its region. *)
and mirror_prune t ~parent ~node ~group =
  let pst = state t parent group in
  let oif = Network.iface_to t.network ~node:parent ~neighbor:node in
  if Bitset.mem pst.oifs oif then begin
    Bitset.remove pst.oifs oif;
    remove_edge t ~group ~parent ~child:node
  end

and detach_other_parents t ~group ~node ~keep =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> ()
  | Some tr -> (
      match List.filter (fun p -> p <> keep) tr.parents.(node) with
      | [] -> ()
      | others ->
          (* ascending, and a snapshot: remove_edge mutates the list *)
          List.iter
            (fun p ->
              let pst = state t p group in
              let oif = Network.iface_to t.network ~node:p ~neighbor:node in
              Bitset.remove pst.oifs oif;
              remove_edge t ~group ~parent:p ~child:node;
              maybe_prune t ~node:p ~group)
            others)

let set_shard_bridge t ~owns ~post_graft ~post_prune =
  t.bridge <- Some { owns; post_graft; post_prune }

(* The owning region's half of a boundary graft hop, called at the hop's
   stamped landing time: the body of the sequential landing closure,
   minus the RPF revalidation (sharded topologies are static) — set the
   parent's interface bit, record the edge, and continue the recursion
   toward the source if the parent just came on-tree. Idempotent, so a
   re-graft after a prune replays cleanly. *)
let admit_graft t ~parent ~child ~group =
  let src = source t ~group in
  detach_other_parents t ~group ~node:child ~keep:parent;
  let pst = state t parent group in
  let oif = Network.iface_to t.network ~node:parent ~neighbor:child in
  if not (Bitset.mem pst.oifs oif) then begin
    Bitset.add pst.oifs oif;
    add_edge t ~group ~parent ~child
  end;
  if not pst.on_tree then begin
    pst.on_tree <- true;
    if parent <> src then detached_add t ~group ~node:parent;
    graft t ~node:parent ~group
  end

(* The owning region's half of a boundary prune hop: the sequential
   landing closure verbatim — drop the child's interface and edge, then
   let the parent reconsider its own membership. *)
let admit_prune t ~parent ~child ~group =
  let pst = state t parent group in
  let oif = Network.iface_to t.network ~node:parent ~neighbor:child in
  if Bitset.mem pst.oifs oif then begin
    Bitset.remove pst.oifs oif;
    remove_edge t ~group ~parent ~child
  end;
  maybe_prune t ~node:parent ~group

(* Recorded edges as a sorted (parent, child) snapshot — iteration order
   of the former pair-set, safe to iterate while edges are removed. *)
let edges_snapshot tr =
  let acc = ref [] in
  for c = Array.length tr.parents - 1 downto 0 do
    List.iter (fun p -> acc := (p, c) :: !acc) tr.parents.(c)
  done;
  List.sort compare !acc

(* Sweep 1 of tree repair: cut every recorded edge of [group] that no
   longer lies on the child's reverse path toward the source (the
   upstream interface died or moved). Iterates a snapshot of the edge
   set, so the removals are safe. Returns the parents whose interface
   sets the cuts shrank: each may just have lost its last downstream
   interest and needs a prune check, which the scoped sweep would
   otherwise miss (the detached set tracks severed children, not
   severed parents). *)
let cut_invalid_edges t ~group ~src =
  let cut_parents = Bitset.create () in
  (match Hashtbl.find_opt t.edges_by_group group with
  | None -> ()
  | Some tr ->
      List.iter
        (fun (p, c) ->
          let valid = c <> src && rpf_parent t ~node:c ~src = Some p in
          if not valid then begin
            let pst = state t p group in
            let oif = Network.iface_to t.network ~node:p ~neighbor:c in
            Bitset.remove pst.oifs oif;
            remove_edge t ~group ~parent:p ~child:c;
            t.edges_repaired <- t.edges_repaired + 1;
            Bitset.add cut_parents p
          end)
        (edges_snapshot tr));
  cut_parents

(* Does [n] have a recorded parent edge? [graft] and [maybe_prune] only
   schedule future work (every hop costs at least a propagation delay),
   so the edge set cannot change during a repair sweep and the live
   lookup equals a snapshot taken at sweep start. *)
let has_parent t ~group n =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> false
  | Some tr -> tr.parents.(n) <> []

(* Sweeps 2 and 3 for one node:
   2. re-graft it if it still wants traffic (local membership or live
      downstream interest) but has no parent edge — re-attachment
      propagates with hop delays, so recovery time is measurable;
   3. start a prune if it is on the tree with neither membership nor
      downstream interest, so severed branches do not linger. *)
let regraft_or_prune t ~group ~src n st =
  if n <> src && st.on_tree then begin
    let interested = st.local || not (Bitset.is_empty st.oifs) in
    if not interested then maybe_prune t ~node:n ~group
    else if not (has_parent t ~group n) then graft t ~node:n ~group
  end

(* A group with no members, no recorded edges and no detached node has no
   tree to cut and nobody to re-attach: all three sweeps would no-op. *)
let group_idle t ~group =
  (match Hashtbl.find_opt t.members_by_group group with
  | Some m -> Bitset.is_empty m
  | None -> true)
  && (match Hashtbl.find_opt t.edges_by_group group with
     | Some tr -> tr.edge_count = 0
     | None -> true)
  && (match Hashtbl.find_opt t.detached_by_group group with
     | Some d -> Bitset.is_empty d
     | None -> true)

(* Full repair of one group against the current routing tables: cut,
   then walk every allocated node state for sweeps 2–3. *)
let repair_group t ~group =
  let src = t.src_of.(group) in
  if src >= 0 then begin
    ignore (cut_invalid_edges t ~group ~src : Bitset.t);
    let row = t.state_rows.(group) in
    for n = 0 to Array.length row - 1 do
      match row.(n) with
      | None -> ()
      | Some st -> regraft_or_prune t ~group ~src n st
    done
  end

(* Event-scoped repair of one group: the same cut, but sweeps 2–3 walk
   only the nodes the event can have left inconsistent — the detached
   set (subtree roots the cuts just severed plus any node still waiting
   for a graft) and the parents the cuts stripped of a child (which may
   just have lost their last downstream interest) — instead of every
   node row. Any other on-tree node still has a valid parent edge and
   unchanged interest, so it needs neither a graft nor a prune and
   restricting the sweep to this set loses nothing. *)
let repair_group_scoped t ~group =
  let src = t.src_of.(group) in
  if src >= 0 then begin
    let work = cut_invalid_edges t ~group ~src in
    (* union in a copy: the sweep itself moves nodes in and out of the
       live detached set *)
    (match Hashtbl.find_opt t.detached_by_group group with
    | Some det -> Bitset.union_into ~into:work det
    | None -> ());
    Bitset.iter
      (fun n -> regraft_or_prune t ~group ~src n (state t n group))
      work
  end

let repair t =
  t.repair_passes <- t.repair_passes + 1;
  for g = 0 to t.next_group - 1 do
    if t.src_of.(g) >= 0 && not (group_idle t ~group:g) then
      repair_group t ~group:g
  done

(* Observer entry point: one pass per topology event, bounded to the
   groups the event can have touched. A group's recorded edges and
   detached nodes are validated against its source's routing table, so
   repair is needed only where that table moved — the groups rooted at
   the event's affected destinations (their reverse paths crossed the
   link) — plus, belt and braces, any group with a recorded tree edge
   riding the changed link itself. Every other group's state provably
   still agrees with the tables and is skipped without being read. *)
let repair_event t (ev : Network.topology_event) =
  t.repair_passes <- t.repair_passes + 1;
  let candidates = Bitset.create () in
  List.iter
    (fun d ->
      match Hashtbl.find_opt t.groups_by_src d with
      | Some gs -> Bitset.union_into ~into:candidates gs
      | None -> ())
    ev.affected_destinations;
  (match Hashtbl.find_opt t.groups_by_link (link_key ev.a ev.b) with
  | Some gs -> Bitset.union_into ~into:candidates gs
  | None -> ());
  Bitset.iter
    (fun g ->
      if t.src_of.(g) >= 0 && not (group_idle t ~group:g) then
        repair_group_scoped t ~group:g)
    candidates

let create ~network ?(leave_latency = Time.span_of_sec 1)
    ?(expedited_leave = false) () =
  let t =
    {
      network;
      arena = Network.arena network;
      node_count = Network.node_count network;
      oif_scratch = Array.make 8 0;
      leave_latency;
      expedited_leave;
      src_of = [||];
      state_rows = [||];
      delivered_by_group = [||];
      members_by_group = Hashtbl.create 64;
      edges_by_group = Hashtbl.create 64;
      groups_by_src = Hashtbl.create 64;
      groups_by_link = Hashtbl.create 64;
      detached_by_group = Hashtbl.create 64;
      next_group = 0;
      repair_passes = 0;
      edges_repaired = 0;
      crashed_locals = Hashtbl.create 8;
      bridge = None;
    }
  in
  for n = 0 to Network.node_count network - 1 do
    Network.set_mcast_handler network n (fun pkt ~in_iface ->
        handle t n pkt ~in_iface)
  done;
  Network.add_topology_observer network (fun ev -> repair_event t ev);
  t

let join t ~node ~group =
  let src = source t ~group in
  let st = state t node group in
  if not st.local then add_member t ~group ~node;
  st.local <- true;
  st.leave_epoch <- st.leave_epoch + 1;
  if not st.on_tree then begin
    st.on_tree <- true;
    if node <> src then begin
      detached_add t ~group ~node;
      graft t ~node ~group
    end
  end

let leave t ~node ~group =
  let st = state t node group in
  if st.local then begin
    st.local <- false;
    remove_member t ~group ~node;
    st.leave_epoch <- st.leave_epoch + 1;
    if t.expedited_leave then maybe_prune t ~node ~group
    else begin
      let epoch = st.leave_epoch in
      ignore
        (Sim.schedule_after (Network.sim t.network) t.leave_latency (fun () ->
             if st.leave_epoch = epoch && not st.local then
               maybe_prune t ~node ~group))
    end
  end

let is_member t ~node ~group = (state t node group).local

(* A node crash wipes every trace of the node from the group tables: the
   per-link repairs the crash's link-downs triggered have already cut the
   edges the routing change invalidated, so this is mostly membership and
   interest bookkeeping — plus a defensive cut of any edge the repairs
   did not reach (a crash called outside [Faults] sees them). Severed
   children land in the detached sets as usual and re-graft through the
   normal repair path once connectivity returns. Local memberships are
   remembered for [recover_node]. *)
let crash_node t ~node =
  let wiped = ref [] in
  for g = t.next_group - 1 downto 0 do
    if t.src_of.(g) >= 0 then begin
      let row = t.state_rows.(g) in
      if Array.length row > 0 then
        match row.(node) with
        | None -> ()
        | Some st ->
            if st.local then begin
              wiped := g :: !wiped;
              st.local <- false;
              remove_member t ~group:g ~node
            end;
            (* void any in-flight leave timer *)
            st.leave_epoch <- st.leave_epoch + 1;
            (* cut upstream edges (parents still forwarding to us) *)
            (match Hashtbl.find_opt t.edges_by_group g with
            | None -> ()
            | Some tr ->
                List.iter
                  (fun p ->
                    let pst = state t p g in
                    let oif =
                      Network.iface_to t.network ~node:p ~neighbor:node
                    in
                    Bitset.remove pst.oifs oif;
                    remove_edge t ~group:g ~parent:p ~child:node)
                  tr.parents.(node));
            (* cut downstream edges (we were forwarding to children) *)
            Bitset.iter
              (fun oif ->
                let c = Network.neighbor t.network ~node ~iface:oif in
                remove_edge t ~group:g ~parent:node ~child:c)
              st.oifs;
            Bitset.clear st.oifs;
            st.on_tree <- false;
            detached_remove t ~group:g ~node
    end
  done;
  Hashtbl.replace t.crashed_locals node !wiped

(* Rebuild from RPF joins: by the time this runs the node's links are
   back up, so each remembered membership re-grafts along the fresh
   reverse path exactly as an original join would. Members elsewhere
   whose subtrees the crash severed re-attach through [repair_event]
   when the restored links' topology events fire — nothing here needs
   to touch them. *)
let recover_node t ~node =
  match Hashtbl.find_opt t.crashed_locals node with
  | None -> ()
  | Some groups ->
      Hashtbl.remove t.crashed_locals node;
      List.iter (fun g -> join t ~node ~group:g) groups

(* Both views are maintained incrementally; bitset iteration and the
   child-indexed edge collection are ascending, so the sorted lists match
   the seed's fold + sort over the whole state table element for
   element. *)
let members t ~group =
  match Hashtbl.find_opt t.members_by_group group with
  | None -> []
  | Some s -> Bitset.elements s

let tree_edges t ~group =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> []
  | Some tr -> edges_snapshot tr

let on_tree t ~node ~group = (state t node group).on_tree

let delivered t ~group =
  if group < 0 || group >= Array.length t.delivered_by_group then 0
  else t.delivered_by_group.(group)

let group_count t = t.next_group
let repair_passes t = t.repair_passes
let edges_repaired t = t.edges_repaired
