module Sim = Engine.Sim
module Time = Engine.Time
module Addr = Net.Addr
module Network = Net.Network
module Iset = Set.Make (Int)

module Pset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type gstate = {
  mutable oifs : Iset.t;  (* outgoing interfaces with downstream interest *)
  mutable local : bool;  (* application-level membership at this node *)
  mutable on_tree : bool;
  mutable leave_epoch : int;  (* invalidates stale leave timers *)
}

type t = {
  network : Network.t;
  node_count : int;
  leave_latency : Time.span;
  expedited_leave : bool;
  (* Group ids are dense (allocated by [fresh_group]), so the per-packet
     tables are arrays indexed by group — the forwarding path does plain
     loads instead of hashing. Rows of [state_rows] are node-indexed and
     allocated on a group's first touch. *)
  mutable src_of : Addr.node_id array;  (* -1 = unknown group *)
  mutable state_rows : gstate option array array;
  mutable delivered_by_group : int array;
  (* Derived views maintained incrementally on join/leave/graft/prune so
     [members] and [tree_edges] — queried every TopoSense decision epoch —
     don't fold the whole (node, group) table. *)
  members_by_group : (Addr.group_id, Iset.t) Hashtbl.t;
  edges_by_group : (Addr.group_id, Pset.t) Hashtbl.t;
  mutable next_group : Addr.group_id;
  mutable repair_passes : int;
  mutable edges_repaired : int;
}

let grow_groups t g =
  let cap = Array.length t.src_of in
  if g >= cap then begin
    let ncap = max 8 (max (g + 1) (2 * cap)) in
    let nsrc = Array.make ncap (-1) in
    Array.blit t.src_of 0 nsrc 0 cap;
    t.src_of <- nsrc;
    let nrows = Array.make ncap [||] in
    Array.blit t.state_rows 0 nrows 0 cap;
    t.state_rows <- nrows;
    let ndel = Array.make ncap 0 in
    Array.blit t.delivered_by_group 0 ndel 0 cap;
    t.delivered_by_group <- ndel
  end

let add_member t ~group ~node =
  let cur =
    Option.value ~default:Iset.empty (Hashtbl.find_opt t.members_by_group group)
  in
  Hashtbl.replace t.members_by_group group (Iset.add node cur)

let remove_member t ~group ~node =
  match Hashtbl.find_opt t.members_by_group group with
  | None -> ()
  | Some cur -> Hashtbl.replace t.members_by_group group (Iset.remove node cur)

let add_edge t ~group ~parent ~child =
  let cur =
    Option.value ~default:Pset.empty (Hashtbl.find_opt t.edges_by_group group)
  in
  Hashtbl.replace t.edges_by_group group (Pset.add (parent, child) cur)

let remove_edge t ~group ~parent ~child =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> ()
  | Some cur ->
      Hashtbl.replace t.edges_by_group group (Pset.remove (parent, child) cur)

let state t node group =
  grow_groups t group;
  let row = t.state_rows.(group) in
  let row =
    if Array.length row > 0 then row
    else begin
      let r = Array.make t.node_count None in
      t.state_rows.(group) <- r;
      r
    end
  in
  match row.(node) with
  | Some s -> s
  | None ->
      let s = { oifs = Iset.empty; local = false; on_tree = false; leave_epoch = 0 } in
      row.(node) <- Some s;
      s

let source t ~group =
  if group < 0 || group >= Array.length t.src_of || t.src_of.(group) < 0 then
    invalid_arg "Multicast.Router: unknown group";
  t.src_of.(group)

let count_delivery t group =
  t.delivered_by_group.(group) <- t.delivered_by_group.(group) + 1

(* Data-plane forwarding, installed on every node. *)
let handle t node (pkt : Net.Packet.t) ~in_iface =
  match pkt.dst with
  | Addr.Unicast _ -> ()
  | Addr.Multicast group ->
      let src = source t ~group in
      (* RPF: the packet must arrive over the interface on the unicast
         shortest path toward the source. Comparing neighbor ids avoids a
         neighbor->interface lookup on the per-packet path. *)
      let rpf_ok =
        match in_iface with
        | None -> node = src
        | Some i ->
            node <> src
            && Network.neighbor t.network ~node ~iface:i
               = Net.Routing.next_hop (Network.routing t.network) ~from:node
                   ~dst:src
      in
      if rpf_ok then begin
        let st = state t node group in
        if st.local then begin
          count_delivery t group;
          Network.deliver_local t.network node pkt
        end;
        Iset.iter
          (fun oif ->
            if in_iface <> Some oif then
              Network.send_on_iface t.network ~node ~iface:oif pkt)
          st.oifs
      end

let leave_latency t = t.leave_latency
let expedited_leave t = t.expedited_leave

let fresh_group t ~source =
  let g = t.next_group in
  t.next_group <- t.next_group + 1;
  grow_groups t g;
  t.src_of.(g) <- source;
  g

let hop_delay t ~node ~parent =
  let iface = Network.iface_to t.network ~node ~neighbor:parent in
  Net.Link.prop_delay (Network.link_on_iface t.network ~node ~iface)

let rpf_parent t ~node ~src =
  Net.Routing.next_hop_opt (Network.routing t.network) ~from:node ~dst:src

(* Propagate a graft toward the source until an on-tree ancestor (or the
   source) absorbs it. Each hop takes the link's propagation delay. The
   in-flight hop revalidates against the routing tables when it lands:
   if a failure rerouted us meanwhile, the graft restarts along the new
   reverse path instead of installing a stale edge. *)
let rec graft t ~node ~group =
  let src = source t ~group in
  if node <> src then
    match rpf_parent t ~node ~src with
    | None -> () (* partitioned; the repair pass after reconnection retries *)
    | Some parent ->
        let delay = hop_delay t ~node ~parent in
        ignore
          (Sim.schedule_after (Network.sim t.network) delay (fun () ->
               if rpf_parent t ~node ~src <> Some parent then begin
                 let st = state t node group in
                 if st.on_tree && (st.local || not (Iset.is_empty st.oifs))
                 then graft t ~node ~group
               end
               else begin
                 detach_other_parents t ~group ~node ~keep:parent;
                 let pst = state t parent group in
                 let oif =
                   Network.iface_to t.network ~node:parent ~neighbor:node
                 in
                 if not (Iset.mem oif pst.oifs) then begin
                   pst.oifs <- Iset.add oif pst.oifs;
                   add_edge t ~group ~parent ~child:node
                 end;
                 if not pst.on_tree then begin
                   pst.on_tree <- true;
                   graft t ~node:parent ~group
                 end
               end))

(* Prune upward: a node with no local member and no downstream interest
   leaves the tree and tells its parent after one hop delay. *)
and maybe_prune t ~node ~group =
  let src = source t ~group in
  let st = state t node group in
  if st.on_tree && (not st.local) && Iset.is_empty st.oifs && node <> src then begin
    st.on_tree <- false;
    match rpf_parent t ~node ~src with
    | None -> () (* detached by a partition; repair already cut the edge *)
    | Some parent ->
        let delay = hop_delay t ~node ~parent in
        ignore
          (Sim.schedule_after (Network.sim t.network) delay (fun () ->
               let pst = state t parent group in
               let oif = Network.iface_to t.network ~node:parent ~neighbor:node in
               if Iset.mem oif pst.oifs then begin
                 pst.oifs <- Iset.remove oif pst.oifs;
                 remove_edge t ~group ~parent ~child:node
               end;
               maybe_prune t ~node:parent ~group))
  end

(* Detach [node] from any recorded parent other than [keep]: a reroute can
   leave the old parent still forwarding to us while a graft installs the
   new one. Never fires while routing is static. *)
and detach_other_parents t ~group ~node ~keep =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> ()
  | Some edges ->
      Pset.iter
        (fun (p, c) ->
          if c = node && p <> keep then begin
            let pst = state t p group in
            let oif = Network.iface_to t.network ~node:p ~neighbor:node in
            pst.oifs <- Iset.remove oif pst.oifs;
            remove_edge t ~group ~parent:p ~child:node;
            maybe_prune t ~node:p ~group
          end)
        edges

(* Tree repair after a routing change. Three sweeps per group:
   1. cut every recorded edge that no longer lies on the child's reverse
      path toward the source (the upstream interface died or moved);
   2. re-graft every node that still wants traffic (local membership or
      live downstream interest) but lost its parent edge — re-attachment
      propagates with hop delays, so recovery time is measurable;
   3. start a prune at every on-tree node left with neither membership
      nor downstream interest, so severed branches do not linger. *)
let repair_group t ~group =
  let src = t.src_of.(group) in
  if src >= 0 then begin
    (match Hashtbl.find_opt t.edges_by_group group with
    | None -> ()
    | Some edges ->
        Pset.iter
          (fun (p, c) ->
            let valid = c <> src && rpf_parent t ~node:c ~src = Some p in
            if not valid then begin
              let pst = state t p group in
              let oif = Network.iface_to t.network ~node:p ~neighbor:c in
              pst.oifs <- Iset.remove oif pst.oifs;
              remove_edge t ~group ~parent:p ~child:c;
              t.edges_repaired <- t.edges_repaired + 1
            end)
          edges);
    let row = t.state_rows.(group) in
    let edges_now () =
      Option.value ~default:Pset.empty (Hashtbl.find_opt t.edges_by_group group)
    in
    for n = 0 to Array.length row - 1 do
      match row.(n) with
      | None -> ()
      | Some st ->
          if n <> src && st.on_tree then begin
            let interested = st.local || not (Iset.is_empty st.oifs) in
            if not interested then maybe_prune t ~node:n ~group
            else if not (Pset.exists (fun (_, c) -> c = n) (edges_now ()))
            then graft t ~node:n ~group
          end
    done
  end

let repair t =
  t.repair_passes <- t.repair_passes + 1;
  for g = 0 to t.next_group - 1 do
    repair_group t ~group:g
  done

let create ~network ?(leave_latency = Time.span_of_sec 1)
    ?(expedited_leave = false) () =
  let t =
    {
      network;
      node_count = Network.node_count network;
      leave_latency;
      expedited_leave;
      src_of = [||];
      state_rows = [||];
      delivered_by_group = [||];
      members_by_group = Hashtbl.create 64;
      edges_by_group = Hashtbl.create 64;
      next_group = 0;
      repair_passes = 0;
      edges_repaired = 0;
    }
  in
  for n = 0 to Network.node_count network - 1 do
    Network.set_mcast_handler network n (fun pkt ~in_iface ->
        handle t n pkt ~in_iface)
  done;
  Network.add_topology_observer network (fun () -> repair t);
  t

let join t ~node ~group =
  let src = source t ~group in
  let st = state t node group in
  if not st.local then add_member t ~group ~node;
  st.local <- true;
  st.leave_epoch <- st.leave_epoch + 1;
  if not st.on_tree then begin
    st.on_tree <- true;
    if node <> src then graft t ~node ~group
  end

let leave t ~node ~group =
  let st = state t node group in
  if st.local then begin
    st.local <- false;
    remove_member t ~group ~node;
    st.leave_epoch <- st.leave_epoch + 1;
    if t.expedited_leave then maybe_prune t ~node ~group
    else begin
      let epoch = st.leave_epoch in
      ignore
        (Sim.schedule_after (Network.sim t.network) t.leave_latency (fun () ->
             if st.leave_epoch = epoch && not st.local then
               maybe_prune t ~node ~group))
    end
  end

let is_member t ~node ~group = (state t node group).local

(* Both views are maintained incrementally; [Iset.elements] and
   [Pset.elements] return sorted lists, matching the seed's fold + sort
   over the whole state table element for element. *)
let members t ~group =
  match Hashtbl.find_opt t.members_by_group group with
  | None -> []
  | Some s -> Iset.elements s

let tree_edges t ~group =
  match Hashtbl.find_opt t.edges_by_group group with
  | None -> []
  | Some s -> Pset.elements s

let on_tree t ~node ~group = (state t node group).on_tree

let delivered t ~group =
  if group < 0 || group >= Array.length t.delivered_by_group then 0
  else t.delivered_by_group.(group)

let group_count t = t.next_group
let repair_passes t = t.repair_passes
let edges_repaired t = t.edges_repaired
