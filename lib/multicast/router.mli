(** Source-rooted multicast trees with IGMP-style leave latency.

    One [Router.t] manages the multicast state of every node in a network:
    per-(group) outgoing-interface lists, local membership, and join/prune
    propagation toward the group's source along the unicast reverse path.
    Creating the router installs the multicast forwarding handler on every
    node.

    Control-plane model (documented substitution — see DESIGN.md): join and
    prune messages propagate hop-by-hop with each link's propagation delay
    but are not subject to data-plane queueing, matching how ns models
    PIM/DVMRP-style state changes. Leaving a group only takes effect after
    [leave_latency] at the receiver's last-hop interface, modelling the
    IGMP group-leave latency the paper discusses in Section V; prunes
    further up the tree propagate with hop delay only.

    Data-plane: a multicast packet is reverse-path-forward checked, copied
    onto every outgoing interface of its group except the arrival
    interface, and delivered locally where there is local membership. *)

type t

val create :
  network:Net.Network.t ->
  ?leave_latency:Engine.Time.span ->
  ?expedited_leave:bool ->
  unit ->
  t
(** Installs forwarding on all nodes. Default [leave_latency] is 1 s.

    [expedited_leave] implements the remedy the paper proposes in
    Section V ("expedited group-leaves, where routers keep track of
    receivers downstream"): a leave prunes immediately instead of waiting
    out the IGMP leave latency. Default false. *)

val expedited_leave : t -> bool

val leave_latency : t -> Engine.Time.span

val fresh_group : t -> source:Net.Addr.node_id -> Net.Addr.group_id
(** Allocates a group address rooted at [source]. *)

val source : t -> group:Net.Addr.group_id -> Net.Addr.node_id
(** @raise Invalid_argument on an unknown group. *)

val join : t -> node:Net.Addr.node_id -> group:Net.Addr.group_id -> unit
(** Local membership at [node]; grafts the node onto the tree (propagating
    toward the source with hop delays) if it is not already on it.
    Idempotent. *)

val leave : t -> node:Net.Addr.node_id -> group:Net.Addr.group_id -> unit
(** Drops local membership. Forwarding toward [node] stops only after the
    leave latency, and only if the node has not re-joined meanwhile.
    Idempotent. *)

val is_member : t -> node:Net.Addr.node_id -> group:Net.Addr.group_id -> bool
(** Local membership as requested by the application (ignores pending
    leave timers). *)

val crash_node : t -> node:Net.Addr.node_id -> unit
(** Wipes every trace of [node] from the group tables — local
    memberships (remembered for {!recover_node}), tree presence,
    outgoing interest, recorded edges in both directions — and voids its
    pending leave timers. Called by the fault layer's crash observers
    after the node's links are already down, when the per-link repairs
    have cut most of this already; the explicit wipe makes the crash
    semantics independent of repair ordering. Severed children keep
    their interest and re-graft through the normal repair path once
    connectivity returns. Idempotent. *)

val recover_node : t -> node:Net.Addr.node_id -> unit
(** Re-issues a {!join} for every local membership {!crash_node} wiped
    at [node] — the RPF joins that rebuild its group state along the
    fresh reverse paths. Must run after the node's links are restored.
    No-op if the node was not crashed. *)

val members : t -> group:Net.Addr.group_id -> Net.Addr.node_id list
(** Nodes with local membership, sorted. *)

val tree_edges :
  t -> group:Net.Addr.group_id -> (Net.Addr.node_id * Net.Addr.node_id) list
(** Installed forwarding edges as (parent, child) pairs — the actual
    distribution tree, including branches kept alive by leave latency.
    Used by the topology-discovery tool. *)

val on_tree : t -> node:Net.Addr.node_id -> group:Net.Addr.group_id -> bool

val delivered : t -> group:Net.Addr.group_id -> int
(** Packets delivered to local members of [group] (all nodes), for tests. *)

val group_count : t -> int

val repair : t -> unit
(** Repairs every non-idle group's tree against the current routing
    tables: edges whose upstream interface died or moved off the reverse
    path are cut immediately; nodes that still want traffic but lost
    their parent re-graft along the new reverse path (with hop delays, so
    recovery takes network time); severed branches with no remaining
    interest are pruned. Groups with no source, and idle groups (no
    members, no recorded edges, no node awaiting a graft), are skipped —
    their sweeps could not do anything.

    Topology changes do NOT go through this full scan: every
    {!Net.Network.set_link_up} reaches the router through a topology
    observer carrying the changed link and the destinations whose routing
    tables moved, and the router repairs only the groups that evidence
    can have touched — those rooted at an affected destination (their
    reverse paths crossed the link) or with a recorded tree edge on the
    link — and, within a group, only the severed subtree roots and
    graft-pending nodes rather than every node. Call [repair] directly
    only in tests, to force a full sweep. *)

val repair_passes : t -> int
(** Repair passes run since creation: one per topology event delivered by
    the network's observer (whether or not any group qualified for
    repair) plus one per direct {!repair} call. NOT a per-group or
    per-sweep count — the work done within a pass is bounded by the
    event's damage and is visible in {!edges_repaired} and
    {!Net.Routing.recomputes} instead. *)

val edges_repaired : t -> int
(** Tree edges cut by repair passes since creation. *)

(** {1 Shard bridge} — conservative parallel simulation support.

    In a sharded run ({!Engine.Shard}), every region runs its own router
    replica over the shared (static) topology; graft and prune hops that
    land on a node another region owns must mutate {e that} region's
    state. The bridge reroutes exactly those hops: the posting side
    buffers a message carrying the hop's propagation delay (at least the
    shard lookahead on a boundary link) and mirrors the recorded edge
    locally so its tree snapshots stay whole; the owning side applies
    the real mutation via {!admit_graft}/{!admit_prune} at the stamped
    landing time. Requires a static topology — the fault layer must not
    be driven over a bridged router. *)

val set_shard_bridge :
  t ->
  owns:(Net.Addr.node_id -> bool) ->
  post_graft:
    (parent:Net.Addr.node_id ->
    child:Net.Addr.node_id ->
    group:Net.Addr.group_id ->
    delay:Engine.Time.span ->
    unit) ->
  post_prune:
    (parent:Net.Addr.node_id ->
    child:Net.Addr.node_id ->
    group:Net.Addr.group_id ->
    delay:Engine.Time.span ->
    unit) ->
  unit
(** Installs the bridge on this region's replica. [owns] must agree with
    the ownership predicate given to {!Net.Network.set_shard_boundary};
    the post callbacks run during this region's simulation and must only
    buffer (the shard runner carries them across). *)

val admit_graft :
  t ->
  parent:Net.Addr.node_id ->
  child:Net.Addr.node_id ->
  group:Net.Addr.group_id ->
  unit
(** Apply a graft hop posted by [child]'s region: set [parent]'s
    interface toward [child], record the edge, and continue grafting
    toward the source if [parent] just came on-tree. Call in the region
    owning [parent], at the hop's stamped landing time. Idempotent. *)

val admit_prune :
  t ->
  parent:Net.Addr.node_id ->
  child:Net.Addr.node_id ->
  group:Net.Addr.group_id ->
  unit
(** Apply a prune hop posted by [child]'s region: drop [parent]'s
    interface toward [child] and let [parent] reconsider its own
    membership (recursing upward as needed). Same calling contract as
    {!admit_graft}. *)
