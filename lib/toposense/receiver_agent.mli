(** The receiver agent.

    Runs at a receiver node. It keeps the reception accounting
    ({!Reports.Receiver_stats}), sends periodic RTCP-like reports to the
    controller, and obeys the controller's suggestion packets. When no
    suggestion has arrived for [suggestion_timeout_intervals] TopoSense
    intervals (suggestions are droppable packets), the receiver makes
    unilateral decisions, as the paper's architecture prescribes: drop a
    layer on sustained high loss, and probe one layer upward at a
    randomized period when reception is clean.

    One agent per node; it may subscribe to several sessions. *)

type t

val create :
  network:Net.Network.t ->
  router:Multicast.Router.t ->
  params:Params.t ->
  node:Net.Addr.node_id ->
  controller:Net.Addr.node_id ->
  unit ->
  t
(** Installs the packet handler on [node]. *)

val subscribe : t -> session:Traffic.Session.t -> initial_level:int -> unit
(** Joins the session at [initial_level] and starts reporting on it. *)

val start : t -> unit
(** Starts the periodic report and watchdog tasks. *)

val stop : t -> unit

val level : t -> session:int -> int
(** Current subscription level. *)

val set_level : t -> session:int -> level:int -> unit
(** Changes the subscription (joins/leaves layer groups and resets the
    per-layer accounting epochs). Exposed for tests and baselines. *)

val changes : t -> session:int -> (Engine.Time.t * int) list
(** Every subscription-level change, oldest first, as (time, new level).
    The initial subscribe is included. *)

val last_window_loss : t -> session:int -> float
(** Loss rate of the most recent report window (0 before the first
    report); what Fig. 9's loss trace samples. *)

val set_controller : t -> controller:Net.Addr.node_id -> unit
(** Re-points future reports at a different controller node — the
    failover step after a controller outage. Already-sent reports are
    unaffected; the watchdog keeps covering the gap until the new
    controller's suggestions arrive. *)

val controller : t -> Net.Addr.node_id

val suggestions_received : t -> int
val unilateral_actions : t -> int
val node : t -> Net.Addr.node_id
val sessions : t -> Traffic.Session.t list
