(** The receiver agent.

    Runs at a receiver node. It keeps the reception accounting
    ({!Reports.Receiver_stats}), sends periodic RTCP-like reports to the
    controller — each stamped with a {!Protocol} sequence number — and
    obeys the controller's suggestion packets, admitting them through the
    matching dup/stale filter so a duplicated or reordered prescription
    is applied at most once. With [params.reliable_prescriptions] every
    admitted prescription is ACKed back to its sender.

    When no valid in-sequence suggestion has arrived for
    [suggestion_timeout_intervals] TopoSense intervals (suggestions are
    droppable packets), the receiver makes unilateral decisions, as the
    paper's architecture prescribes. Two fallback machines exist:

    - the legacy watchdog (default): drop a layer on sustained high
      loss, probe one layer upward at a randomized period;
    - with [params.rlm_fallback], a full standalone RLM-style machine
      (mirroring {!Baseline.Rlm}'s join experiments): probes are timed
      join experiments with multiplicative per-layer timers and ±50%
      jitter, failed experiments back out and arm a {!Backoff} timer on
      the dropped layer, and the first fresh prescription to arrive
      resyncs the receiver — the controller's level is adopted outright
      and any running experiment is cancelled.

    One agent per node; it may subscribe to several sessions. *)

type t

val create :
  network:Net.Network.t ->
  router:Multicast.Router.t ->
  params:Params.t ->
  node:Net.Addr.node_id ->
  controller:Net.Addr.node_id ->
  unit ->
  t
(** Installs the packet handler on [node]. *)

val subscribe : t -> session:Traffic.Session.t -> initial_level:int -> unit
(** Joins the session at [initial_level] and starts reporting on it.
    Re-subscribing after {!unsubscribe} is allowed and resumes cleanly
    (the report sequence space keeps counting up, so the controller's
    dup/stale filter re-admits the receiver at once). *)

val unsubscribe : t -> session:int -> unit
(** Leaves all of the session's layer groups, stops reporting on it, and
    sends a goodbye so the controller removes this receiver from the
    session instead of keeping it on the books forever. Suggestions that
    still arrive for the session (computed from stale topology images)
    are ignored rather than re-joining the groups. *)

val start : t -> unit
(** Starts the periodic report and watchdog tasks. *)

val stop : t -> unit

val level : t -> session:int -> int
(** Current subscription level. *)

val set_level : t -> session:int -> level:int -> unit
(** Changes the subscription (joins/leaves layer groups and resets the
    per-layer accounting epochs). Exposed for tests and baselines. *)

val changes : t -> session:int -> (Engine.Time.t * int) list
(** Every subscription-level change, oldest first, as (time, new level).
    The initial subscribe is included. *)

val last_window_loss : t -> session:int -> float
(** Loss rate of the most recent report window (0 before the first
    report); what Fig. 9's loss trace samples. *)

val last_suggestion_at : t -> session:int -> Engine.Time.t option
(** When the last {e fresh} prescription for the session was admitted
    (subscription time before any has arrived); [None] if the session is
    unknown. The chaos harness uses this to assert every surviving
    receiver is re-prescribed within a bounded number of controller
    intervals after recovery. *)

val set_controller : t -> controller:Net.Addr.node_id -> unit
(** Re-points future reports at a different controller node — the
    failover step after a controller outage. Already-sent reports are
    unaffected; the watchdog keeps covering the gap until the new
    controller's suggestions arrive. *)

val controller : t -> Net.Addr.node_id

val suggestions_received : t -> int
(** Suggestion packets heard for subscribed sessions (fresh, duplicate
    and stale alike; strays for unsubscribed sessions are counted in
    {!stray_suggestions} instead). *)

val unilateral_actions : t -> int

val acks_sent : t -> int
(** Prescription ACKs sent (0 unless [params.reliable_prescriptions]). *)

val dup_suggestions : t -> int
(** Duplicate prescriptions suppressed (re-ACKed, never re-applied). *)

val stale_suggestions : t -> int
(** Reordered-stale prescriptions dropped. *)

val stray_suggestions : t -> int
(** Suggestions ignored because the session was unsubscribed. *)

val fallback_entries : t -> int
(** Times any session entered RLM-fallback mode. *)

val fallback_active : t -> session:int -> bool

val fallback_seconds : t -> session:int -> float
(** Total time the session has spent in fallback mode, including the
    current episode if one is open. *)

val node : t -> Net.Addr.node_id

val sessions : t -> Traffic.Session.t list
(** Currently subscribed sessions (unsubscribed ones excluded). *)
