module Time = Engine.Time

type t = {
  params : Params.t;
  capacity : Capacity.t;
  backoff : Backoff.t;
  subscription : Subscription.t;
  last_verdicts : (int * Net.Addr.node_id, Congestion.verdict) Hashtbl.t;
}

let create ~params ~rng =
  let backoff = Backoff.create ~params ~rng in
  {
    params;
    capacity = Capacity.create ~params;
    backoff;
    subscription = Subscription.create ~params ~backoff;
    last_verdicts = Hashtbl.create 64;
  }

let params t = t.params

type session_input = {
  id : int;
  layering : Traffic.Layering.t;
  tree : Tree.t;
  measures : (Net.Addr.node_id * (float * int)) list;
  levels : (Net.Addr.node_id * int) list;
  may_add : Net.Addr.node_id -> bool;
  frozen : Net.Addr.node_id -> bool;
}

type prescription = {
  session : int;
  receiver : Net.Addr.node_id;
  level : int;
}

let step t ~now inputs =
  let interval_s = Time.span_to_sec_f t.params.interval in
  (* Stage 1 per session. *)
  let verdicts_of =
    List.map
      (fun input ->
        let measure node = List.assoc_opt node input.measures in
        let v = Congestion.compute ~params:t.params ~tree:input.tree ~measure in
        Hashtbl.iter
          (fun node verdict ->
            Hashtbl.replace t.last_verdicts (input.id, node) verdict)
          v;
        (input, v))
      inputs
  in
  (* Stage 2: one observation per physical edge, all sessions pooled. *)
  let edge_sessions = Hashtbl.create 64 in
  let edge_internal = Hashtbl.create 64 in
  let edge_self_congested = Hashtbl.create 64 in
  List.iter
    (fun (input, verdicts) ->
      List.iter
        (fun (p, c) ->
          let verdict = Hashtbl.find verdicts c in
          let cur =
            Option.value ~default:[] (Hashtbl.find_opt edge_sessions (p, c))
          in
          Hashtbl.replace edge_sessions (p, c)
            ((input.id, verdict.Congestion.loss, verdict.Congestion.max_bytes)
            :: cur);
          if not (Tree.is_leaf input.tree c) then
            Hashtbl.replace edge_internal (p, c) ();
          if verdict.Congestion.self_congested && not (Tree.is_leaf input.tree c)
          then Hashtbl.replace edge_self_congested (p, c) ())
        (Tree.edges input.tree))
    verdicts_of;
  Hashtbl.iter
    (fun edge sessions ->
      Capacity.observe t.capacity ~edge ~interval_s
        {
          Capacity.sessions;
          dest_internal = Hashtbl.mem edge_internal edge;
          dest_self_congested = Hashtbl.mem edge_self_congested edge;
        })
    edge_sessions;
  let capacity ~edge = Capacity.estimate_bps t.capacity ~edge in
  (* Stage 3+4: fair caps per session per edge. *)
  let fair =
    Fair_share.compute
      ~sessions:
        (List.map
           (fun (input, _) ->
             { Fair_share.id = input.id; layering = input.layering; tree = input.tree })
           verdicts_of)
      ~capacity
  in
  (* Stage 5 per session. *)
  List.concat_map
    (fun (input, verdicts) ->
      let level_of node =
        Option.value ~default:0 (List.assoc_opt node input.levels)
      in
      let edge_cap edge = Fair_share.cap_bps fair ~session:input.id ~edge in
      let prescriptions =
        Subscription.step t.subscription ~now
          {
            Subscription.session = input.id;
            layering = input.layering;
            tree = input.tree;
            verdicts;
            level_of;
            may_add = input.may_add;
            frozen = input.frozen;
            edge_cap;
          }
      in
      List.map
        (fun (receiver, level) -> { session = input.id; receiver; level })
        prescriptions)
    verdicts_of
  |> List.sort compare

let remove_session t ~session =
  Backoff.clear_session t.backoff ~session;
  Subscription.remove_session t.subscription ~session;
  Hashtbl.filter_map_inplace
    (fun (s, _) verdict -> if s = session then None else Some verdict)
    t.last_verdicts

let capacity_estimate t ~edge = Capacity.estimate_bps t.capacity ~edge

let last_verdict t ~session ~node =
  Hashtbl.find_opt t.last_verdicts (session, node)

let demand_bps t ~session ~node = Subscription.demand_bps t.subscription ~session ~node
let supply_bps t ~session ~node = Subscription.supply_bps t.subscription ~session ~node

let bottleneck t ~session:_ ~tree =
  Bottleneck.compute ~tree ~capacity:(fun ~edge ->
      Capacity.estimate_bps t.capacity ~edge)
