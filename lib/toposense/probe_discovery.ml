module Sim = Engine.Sim
module Time = Engine.Time

type Net.Packet.payload +=
  | Probe_query of { probe_id : int; session : int }
  | Probe_response of {
      probe_id : int;
      session : int;
      receiver : Net.Addr.node_id;
      level : int;
      hops : Net.Addr.node_id list ref;
    }

let probe_size = 80

type chain = {
  hops : Net.Addr.node_id list;  (* receiver first, controller last *)
  level : int;
  heard_at : Time.t;
}

type t = {
  network : Net.Network.t;
  node : Net.Addr.node_id;
  period : Time.span;
  expiry : Time.span;
  registered : (int * Net.Addr.node_id, Time.t) Hashtbl.t;
  chains : (int * Net.Addr.node_id, chain) Hashtbl.t;
  mutable next_probe_id : int;
  mutable task : Sim.handle option;
  mutable queries_sent : int;
  mutable responses_received : int;
}

let create ~network ~node ?(period = Time.span_of_sec 2)
    ?(expiry = Time.span_of_sec 10) () =
  let t =
    {
      network;
      node;
      period;
      expiry;
      registered = Hashtbl.create 32;
      chains = Hashtbl.create 32;
      next_probe_id = 0;
      task = None;
      queries_sent = 0;
      responses_received = 0;
    }
  in
  (* The mtrace stand-in: every router a probe response crosses appends
     itself to the response's hop list. The observer sees every packet at
     every hop, so it must branch on the unboxed tag before touching the
     payload side table (reconstructing a media payload would allocate). *)
  let arena = Net.Network.arena network in
  Net.Network.add_transit_observer network (fun pkt ~at ~in_iface:_ ->
      if not (Net.Packet.is_data arena pkt) then
        match Net.Packet.payload arena pkt with
        | Probe_response { hops; _ } -> hops := !hops @ [ at ]
        | _ -> ());
  t

let now t = Sim.now (Net.Network.sim t.network)

let fresh t at = Time.diff (now t) at <= t.expiry

let handle_packet t (pkt : Net.Packet.t) =
  match Net.Packet.payload (Net.Network.arena t.network) pkt with
  | Reports.Rtcp.Report r ->
      (* A report doubles as registration: this receiver exists and wants
         to be probed. *)
      Hashtbl.replace t.registered (r.session, r.receiver) (now t)
  | Probe_response { session; receiver; level; hops; _ } ->
      t.responses_received <- t.responses_received + 1;
      Hashtbl.replace t.chains (session, receiver)
        { hops = !hops; level; heard_at = now t }
  | _ -> ()

let send_queries t =
  let current = now t in
  Hashtbl.iter
    (fun (session, receiver) registered_at ->
      if Time.diff current registered_at <= t.expiry && receiver <> t.node
      then begin
        t.queries_sent <- t.queries_sent + 1;
        let probe_id = t.next_probe_id in
        t.next_probe_id <- t.next_probe_id + 1;
        Net.Network.originate t.network ~src:t.node
          ~dst:(Net.Addr.Unicast receiver) ~size:probe_size
          ~payload:(Probe_query { probe_id; session })
      end)
    t.registered

let start t =
  if t.task = None then
    t.task <-
      Some
        (Sim.every (Net.Network.sim t.network) ~period:t.period (fun () ->
             send_queries t))

let stop t =
  Option.iter (Sim.cancel (Net.Network.sim t.network)) t.task;
  t.task <- None

let latest t ~session =
  (* Merge the fresh chains into a parent map. A chain lists
     receiver -> ... -> controller; the tree is rooted at the controller
     (the session source when co-located, the domain ingress
     otherwise). *)
  let fresh_chains =
    Hashtbl.fold
      (fun (s, receiver) chain acc ->
        if s = session && fresh t chain.heard_at && chain.hops <> [] then
          (receiver, chain) :: acc
        else acc)
      t.chains []
  in
  match fresh_chains with
  | [] -> None
  | _ ->
      let parent = Hashtbl.create 32 in
      let levels = Hashtbl.create 32 in
      let oldest = ref (now t) in
      List.iter
        (fun (receiver, chain) ->
          if Time.(chain.heard_at < !oldest) then oldest := chain.heard_at;
          Hashtbl.replace levels receiver chain.level;
          let rec walk = function
            | a :: (b :: _ as rest) ->
                Hashtbl.replace parent a b;
                walk rest
            | [ _ ] | [] -> ()
          in
          walk chain.hops)
        fresh_chains;
      (* Max subscription level below each node, for per-edge layer
         sets. *)
      let best_below = Hashtbl.create 32 in
      Hashtbl.iter
        (fun receiver level ->
          (* Bounded walk: chains merged from different instants could in
             principle disagree and form a cycle; never spin on one. *)
          let rec up node steps =
            if steps < Hashtbl.length parent + 2 then begin
              let cur =
                Option.value ~default:0 (Hashtbl.find_opt best_below node)
              in
              if level > cur then Hashtbl.replace best_below node level;
              match Hashtbl.find_opt parent node with
              | Some p when p <> node -> up p (steps + 1)
              | _ -> ()
            end
          in
          up receiver 0)
        levels;
      let edges =
        Hashtbl.fold
          (fun child p acc ->
            let max_level =
              Option.value ~default:1 (Hashtbl.find_opt best_below child)
            in
            {
              Discovery.Snapshot.parent = p;
              child;
              layers = List.init (max 1 max_level) Fun.id;
            }
            :: acc)
          parent []
        |> List.sort (fun (a : Discovery.Snapshot.edge) b ->
               compare (a.parent, a.child) (b.parent, b.child))
      in
      let members =
        Hashtbl.fold (fun r level acc -> (r, level) :: acc) levels []
        |> List.sort compare
      in
      Some
        {
          Discovery.Snapshot.session;
          taken_at = !oldest;
          source = t.node;
          edges;
          members;
        }

let queries_sent t = t.queries_sent
let responses_received t = t.responses_received

let known_receivers t ~session =
  Hashtbl.fold
    (fun (s, r) at acc -> if s = session && fresh t at then r :: acc else acc)
    t.registered []
  |> List.sort_uniq Int.compare
