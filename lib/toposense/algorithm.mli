(** The TopoSense algorithm: composition of the five stages.

    One [step] per interval takes, for every session in the domain, the
    (possibly stale) session tree and the fresh receiver measurements,
    and produces a subscription-level prescription for every member
    receiver. All controller-side state that persists across intervals —
    capacity estimates, congestion/bytes/supply histories, back-off
    timers — lives here, so the surrounding {!Controller} stays a thin
    I/O shim and this module is directly unit-testable. *)

type t

val create : params:Params.t -> rng:Engine.Prng.t -> t

val params : t -> Params.t

type session_input = {
  id : int;
  layering : Traffic.Layering.t;
  tree : Tree.t;  (** from the discovery snapshot *)
  measures : (Net.Addr.node_id * (float * int)) list;
      (** per member leaf: (loss rate, bytes received) over the interval *)
  levels : (Net.Addr.node_id * int) list;
      (** current subscription levels (freshest known) *)
  may_add : Net.Addr.node_id -> bool;
      (** whether a member may probe one layer up this interval (false
          while its last level change is younger than the feedback
          loop) *)
  frozen : Net.Addr.node_id -> bool;
      (** receivers whose reports were flagged settling: their reported
          loss is still congestion/capacity evidence, but they must not
          be asked to reduce again for it *)
}

type prescription = {
  session : int;
  receiver : Net.Addr.node_id;
  level : int;
}

val step : t -> now:Engine.Time.t -> session_input list -> prescription list
(** Runs stages 1–5 once. Prescriptions are sorted by (session,
    receiver). *)

val remove_session : t -> session:int -> unit
(** Session teardown: prunes the back-off timers, stage-5 per-node
    histories and cached verdicts of one session. Capacity estimates are
    per physical edge, shared across sessions, and are kept. *)

val capacity_estimate :
  t -> edge:(Net.Addr.node_id * Net.Addr.node_id) -> float
(** Current stage-2 estimate (diagnostics; [infinity] = unknown). *)

val last_verdict :
  t -> session:int -> node:Net.Addr.node_id -> Congestion.verdict option
(** Stage-1 verdict from the most recent step. *)

val demand_bps : t -> session:int -> node:Net.Addr.node_id -> float option
val supply_bps : t -> session:int -> node:Net.Addr.node_id -> float option

val bottleneck :
  t -> session:int -> tree:Tree.t -> Bottleneck.result
(** Stage-3 view under the current capacity estimates (diagnostics). *)
