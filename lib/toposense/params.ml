module Time = Engine.Time

type t = {
  interval : Time.span;
  report_interval : Time.span;
  p_threshold : float;
  p_high : float;
  p_very_high : float;
  eta_similar : float;
  similar_band : float;
  bw_equal_tolerance : float;
  capacity_growth : float;
  capacity_reset_intervals : int;
  backoff_min : Time.span;
  backoff_max : Time.span;
  suggestion_timeout_intervals : int;
  staleness : Time.span;
  deaf_period : Time.span;
  require_sustained_loss : bool;
  lease_intervals : int;
  reliable_prescriptions : bool;
  retransmit_initial : Time.span;
  retransmit_max : Time.span;
  retransmit_attempts : int;
  rlm_fallback : bool;
  prescribe_known_only : bool;
}

let default =
  {
    interval = Time.span_of_sec 2;
    report_interval = Time.span_of_sec 1;
    p_threshold = 0.03;
    p_high = 0.15;
    p_very_high = 0.30;
    eta_similar = 0.7;
    similar_band = 0.25;
    bw_equal_tolerance = 0.10;
    capacity_growth = 0.02;
    capacity_reset_intervals = 15;
    backoff_min = Time.span_of_sec 10;
    backoff_max = Time.span_of_sec 30;
    suggestion_timeout_intervals = 3;
    staleness = 0;
    deaf_period = Time.span_of_ms 2_500;
    require_sustained_loss = false;
    lease_intervals = 10;
    reliable_prescriptions = false;
    retransmit_initial = Time.span_of_ms 250;
    retransmit_max = Time.span_of_sec 8;
    retransmit_attempts = 6;
    rlm_fallback = false;
    prescribe_known_only = false;
  }

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.interval <= 0 then err "interval must be positive"
  else if t.report_interval <= 0 then err "report_interval must be positive"
  else if not (t.p_threshold > 0.0 && t.p_threshold < 1.0) then
    err "p_threshold must be in (0,1)"
  else if t.p_high < t.p_threshold then err "p_high below p_threshold"
  else if t.p_very_high < t.p_high then err "p_very_high below p_high"
  else if not (t.eta_similar > 0.0 && t.eta_similar <= 1.0) then
    err "eta_similar must be in (0,1]"
  else if t.similar_band < 0.0 then err "similar_band must be >= 0"
  else if t.bw_equal_tolerance < 0.0 then err "bw_equal_tolerance must be >= 0"
  else if t.capacity_growth < 0.0 then err "capacity_growth must be >= 0"
  else if t.capacity_reset_intervals <= 0 then
    err "capacity_reset_intervals must be positive"
  else if t.backoff_min <= 0 || t.backoff_max < t.backoff_min then
    err "backoff bounds must satisfy 0 < min <= max"
  else if t.suggestion_timeout_intervals <= 0 then
    err "suggestion_timeout_intervals must be positive"
  else if t.staleness < 0 then err "staleness must be >= 0"
  else if t.deaf_period < 0 then err "deaf_period must be >= 0"
  else if t.lease_intervals <= 0 then err "lease_intervals must be positive"
  else if t.retransmit_initial <= 0 || t.retransmit_max < t.retransmit_initial
  then err "retransmit bounds must satisfy 0 < initial <= max"
  else if t.retransmit_attempts < 0 then
    err "retransmit_attempts must be >= 0"
  else Ok ()
