module Addr = Net.Addr

type t = {
  session : int;
  source : Addr.node_id;
  parent : (Addr.node_id, Addr.node_id) Hashtbl.t;
  children : (Addr.node_id, Addr.node_id list) Hashtbl.t;
  top_down : Addr.node_id list;
  members : (Addr.node_id * int) list;
}

let of_snapshot (snap : Discovery.Snapshot.t) =
  if not (Discovery.Snapshot.is_tree snap) then
    invalid_arg "Tree.of_snapshot: snapshot is not a tree";
  let parent = Hashtbl.create 32 and children = Hashtbl.create 32 in
  List.iter
    (fun (e : Discovery.Snapshot.edge) ->
      Hashtbl.replace parent e.child e.parent;
      let cs = Option.value ~default:[] (Hashtbl.find_opt children e.parent) in
      Hashtbl.replace children e.parent (e.child :: cs))
    snap.edges;
  (* Sibling lists were built by prepending; one reverse each restores
     snapshot edge order (appending instead is quadratic in fan-out). *)
  Hashtbl.filter_map_inplace (fun _ cs -> Some (List.rev cs)) children;
  (* BFS from the source keeps only the reachable component. Two-list
     queue: pushing on [back] and reversing when [front] drains visits
     nodes in exactly the order a naive [rest @ cs] would, without the
     O(frontier) append per node. *)
  let top_down = ref [] in
  let rec bfs front back =
    match (front, back) with
    | [], [] -> ()
    | [], back -> bfs (List.rev back) []
    | n :: rest, back ->
        top_down := n :: !top_down;
        let cs = Option.value ~default:[] (Hashtbl.find_opt children n) in
        bfs rest (List.fold_left (fun b c -> c :: b) back cs)
  in
  bfs [ snap.source ] [];
  let top_down = List.rev !top_down in
  let present = Hashtbl.create 32 in
  List.iter (fun n -> Hashtbl.replace present n ()) top_down;
  let members =
    List.filter (fun (m, _) -> Hashtbl.mem present m) snap.members
  in
  { session = snap.session; source = snap.source; parent; children; top_down; members }

let source t = t.source
let session t = t.session

let mem t n = List.mem n t.top_down

let parent t n = if n = t.source then None else Hashtbl.find_opt t.parent n

let children t n = Option.value ~default:[] (Hashtbl.find_opt t.children n)

let is_leaf t n = children t n = []

let top_down t = t.top_down
let bottom_up t = List.rev t.top_down

let members t = t.members

let edges t =
  List.concat_map (fun p -> List.map (fun c -> (p, c)) (children t p)) t.top_down

let ancestors t n =
  let rec up acc n =
    match parent t n with None -> List.rev acc | Some p -> up (p :: acc) p
  in
  up [] n

let node_count t = List.length t.top_down
