module Time = Engine.Time

type t = {
  params : Params.t;
  rng : Engine.Prng.t;
  deadlines : (int * Net.Addr.node_id * int, Time.t) Hashtbl.t;
}

let create ~params ~rng = { params; rng; deadlines = Hashtbl.create 64 }

let arm t ~session ~node ~layer ~now =
  let span =
    Engine.Prng.int t.rng
      ~bound:(t.params.backoff_max - t.params.backoff_min + 1)
    + t.params.backoff_min
  in
  Hashtbl.replace t.deadlines (session, node, layer) (Time.add now span)

let active t ~session ~node ~layer ~now =
  match Hashtbl.find_opt t.deadlines (session, node, layer) with
  | None -> false
  | Some deadline -> Time.(now < deadline)

let blocked_on_path t ~session ~tree ~leaf ~layer ~now =
  active t ~session ~node:leaf ~layer ~now
  || List.exists
       (fun node -> active t ~session ~node ~layer ~now)
       (Tree.ancestors tree leaf)

let clear t = Hashtbl.reset t.deadlines

let clear_session t ~session =
  Hashtbl.filter_map_inplace
    (fun (s, _, _) deadline -> if s = session then None else Some deadline)
    t.deadlines
