module Sim = Engine.Sim
module Time = Engine.Time
module Stats = Reports.Receiver_stats

type session_state = {
  session : Traffic.Session.t;
  mutable last_suggestion : Time.t;
  mutable last_window_loss : float;
  mutable probe_deadline : Time.t;  (* unilateral add no earlier than this *)
  mutable deaf_until : Time.t;  (* suppress loss after a drop *)
  mutable changes : (Time.t * int) list;  (* newest first *)
}

type t = {
  network : Net.Network.t;
  router : Multicast.Router.t;
  params : Params.t;
  node : Net.Addr.node_id;
  mutable controller : Net.Addr.node_id;  (* re-pointed on failover *)
  stats : Stats.t;
  rng : Engine.Prng.t;
  sessions : (int, session_state) Hashtbl.t;
  mutable tasks : Sim.handle list;
  mutable suggestions_received : int;
  mutable unilateral_actions : int;
}

let sim t = Net.Network.sim t.network

let level t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> 0
  | Some st ->
      Traffic.Session.subscription_level st.session ~router:t.router
        ~node:t.node

let set_level t ~session ~level:target =
  match Hashtbl.find_opt t.sessions session with
  | None -> invalid_arg "Receiver_agent.set_level: unknown session"
  | Some st ->
      let layering = Traffic.Session.layering st.session in
      let target = max 0 (min target (Traffic.Layering.count layering)) in
      let current = level t ~session in
      if target <> current then begin
        (* Keep accounting epochs in step with membership. *)
        if target > current then
          for layer = current to target - 1 do
            Stats.on_join_layer t.stats ~session ~layer
          done
        else
          for layer = current - 1 downto target do
            Stats.on_leave_layer t.stats ~session ~layer
          done;
        Traffic.Session.set_subscription_level st.session ~router:t.router
          ~node:t.node ~level:target;
        let now = Sim.now (sim t) in
        if target < current then
          st.deaf_until <- Time.add now t.params.deaf_period;
        st.changes <- (now, target) :: st.changes
      end

let on_packet t (pkt : Net.Packet.t) =
  match pkt.payload with
  | Net.Packet.Data { session; layer; seq } ->
      Stats.on_data t.stats ~session ~layer ~seq ~size:pkt.size
  | Probe_discovery.Probe_query { probe_id; session } -> (
      (* Answer the discovery probe; routers fill in the hop list on the
         way back to the controller. *)
      match Hashtbl.find_opt t.sessions session with
      | None -> ()
      | Some _ ->
          Net.Network.originate t.network ~src:t.node
            ~dst:(Net.Addr.Unicast pkt.src) ~size:Probe_discovery.probe_size
            ~payload:
              (Probe_discovery.Probe_response
                 {
                   probe_id;
                   session;
                   receiver = t.node;
                   level = level t ~session;
                   hops = ref [];
                 }))
  | Controller.Suggestion { session; level = suggested } -> (
      match Hashtbl.find_opt t.sessions session with
      | None -> ()
      | Some st ->
          t.suggestions_received <- t.suggestions_received + 1;
          st.last_suggestion <- Sim.now (sim t);
          (* The controller's view of our level lags by a report; obey
             drops verbatim but climb at most one layer at a time. *)
          let current = level t ~session in
          let target =
            if suggested > current then current + 1 else suggested
          in
          set_level t ~session ~level:target)
  | _ -> ()

let create ~network ~router ~params ~node ~controller () =
  let t =
    {
      network;
      router;
      params;
      node;
      controller;
      stats = Stats.create ();
      rng =
        Sim.rng (Net.Network.sim network)
          ~label:(Printf.sprintf "receiver-%d" node);
      sessions = Hashtbl.create 4;
      tasks = [];
      suggestions_received = 0;
      unilateral_actions = 0;
    }
  in
  Net.Network.add_local_handler network node (fun pkt -> on_packet t pkt);
  t

let subscribe t ~session ~initial_level =
  let id = Traffic.Session.id session in
  if Hashtbl.mem t.sessions id then
    invalid_arg "Receiver_agent.subscribe: already subscribed";
  let now = Sim.now (sim t) in
  let st =
    {
      session;
      last_suggestion = now;
      last_window_loss = 0.0;
      probe_deadline = now;
      deaf_until = now;
      changes = [];
    }
  in
  Hashtbl.add t.sessions id st;
  set_level t ~session:id ~level:initial_level

let send_reports t =
  let now = Sim.now (sim t) in
  Hashtbl.iter
    (fun id st ->
      let w = Stats.take_window t.stats ~session:id in
      (* Loss measured while the network is still draining a drop we just
         made is reported truthfully (the controller needs it to correlate
         siblings and estimate capacities) but flagged as settling so it
         does not trigger a further reduction of this receiver. *)
      let settling = Time.(now < st.deaf_until) in
      st.last_window_loss <- w.loss_rate;
      Reports.Rtcp.send_report ~network:t.network ~receiver:t.node
        ~controller:t.controller ~session:id ~level:(level t ~session:id)
        ~window:t.params.report_interval ~settling w)
    t.sessions

(* Unilateral fallback: the controller has gone quiet for this session —
   keep reception safe without it. Sustained high loss sheds the top
   layer; clean reception probes one layer up at a randomized period
   (an RLM-style join experiment). *)
let watchdog t =
  let now = Sim.now (sim t) in
  let timeout = t.params.suggestion_timeout_intervals * t.params.interval in
  Hashtbl.iter
    (fun id st ->
      if Time.diff now st.last_suggestion > timeout then begin
        let current = level t ~session:id in
        if
          st.last_window_loss > t.params.p_high
          && current > 1
          && Time.(now >= st.deaf_until)
        then begin
          t.unilateral_actions <- t.unilateral_actions + 1;
          set_level t ~session:id ~level:(current - 1);
          st.probe_deadline <-
            Time.add now
              (Engine.Prng.int t.rng
                 ~bound:(t.params.backoff_max - t.params.backoff_min + 1)
              + t.params.backoff_min)
        end
        else if
          st.last_window_loss <= t.params.p_threshold
          && Time.(now >= st.probe_deadline)
          (* Same deaf guard as the shed branch: a join experiment while
             the network is still draining a drop we just made would read
             the settling loss as the new layer's fault. *)
          && Time.(now >= st.deaf_until)
          && current < Traffic.Layering.count (Traffic.Session.layering st.session)
        then begin
          t.unilateral_actions <- t.unilateral_actions + 1;
          set_level t ~session:id ~level:(current + 1);
          st.probe_deadline <-
            Time.add now
              (Engine.Prng.int t.rng
                 ~bound:(t.params.backoff_max - t.params.backoff_min + 1)
              + t.params.backoff_min)
        end
      end)
    t.sessions

let start t =
  if t.tasks = [] then begin
    let s = sim t in
    t.tasks <-
      [
        Sim.every s ~period:t.params.report_interval (fun () -> send_reports t);
        Sim.every s ~period:t.params.interval (fun () -> watchdog t);
      ]
  end

let stop t =
  List.iter (Sim.cancel (sim t)) t.tasks;
  t.tasks <- []

let changes t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> []
  | Some st -> List.rev st.changes

let last_window_loss t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> 0.0
  | Some st -> st.last_window_loss

let set_controller t ~controller = t.controller <- controller
let controller t = t.controller

let suggestions_received t = t.suggestions_received
let unilateral_actions t = t.unilateral_actions
let node t = t.node
let sessions t = Hashtbl.fold (fun _ st acc -> st.session :: acc) t.sessions []
