module Sim = Engine.Sim
module Time = Engine.Time
module Stats = Reports.Receiver_stats

type session_state = {
  session : Traffic.Session.t;
  mutable last_suggestion : Time.t;
  mutable last_window_loss : float;
  mutable probe_deadline : Time.t;  (* unilateral add no earlier than this *)
  mutable deaf_until : Time.t;  (* suppress loss after a drop *)
  mutable changes : (Time.t * int) list;  (* newest first *)
  mutable unsubscribed : bool;
      (* departed: no reports, no watchdog, stray suggestions ignored *)
  (* RLM-fallback machine (only driven when [params.rlm_fallback]) *)
  mutable fb_active : bool;
  mutable fb_since : Time.t;
  mutable fb_total : Time.span;  (* closed fallback episodes *)
  mutable experiment : (int * Time.t) option;  (* (level added, settle at) *)
  mutable join_timers : Time.span array;  (* per target level, ×2 on failure *)
  mutable next_join_at : Time.t;
}

type t = {
  network : Net.Network.t;
  arena : Net.Packet.arena;
  router : Multicast.Router.t;
  params : Params.t;
  node : Net.Addr.node_id;
  mutable controller : Net.Addr.node_id;  (* re-pointed on failover *)
  stats : Stats.t;
  rng : Engine.Prng.t;
  fb_rng : Engine.Prng.t;
      (* fallback randomness is a separate stream so enabling the
         fallback machine cannot perturb the legacy watchdog draws *)
  fb_backoff : Backoff.t;
  proto_tx : Protocol.tx;  (* report/goodbye seq, keyed (session, self) *)
  proto_rx : Protocol.rx;  (* prescription seq, keyed (session, controller) *)
  sessions : (int, session_state) Hashtbl.t;
  mutable tasks : Sim.handle list;
  mutable suggestions_received : int;
  mutable unilateral_actions : int;
  mutable acks_sent : int;
  mutable dup_suggestions : int;
  mutable stale_suggestions : int;
  mutable stray_suggestions : int;
  mutable fallback_entries : int;
}

let sim t = Net.Network.sim t.network

let level t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> 0
  | Some st ->
      Traffic.Session.subscription_level st.session ~router:t.router
        ~node:t.node

let set_level t ~session ~level:target =
  match Hashtbl.find_opt t.sessions session with
  | None -> invalid_arg "Receiver_agent.set_level: unknown session"
  | Some st ->
      let layering = Traffic.Session.layering st.session in
      let target = max 0 (min target (Traffic.Layering.count layering)) in
      let current = level t ~session in
      if target <> current then begin
        (* Keep accounting epochs in step with membership. *)
        if target > current then
          for layer = current to target - 1 do
            Stats.on_join_layer t.stats ~session ~layer
          done
        else
          for layer = current - 1 downto target do
            Stats.on_leave_layer t.stats ~session ~layer
          done;
        Traffic.Session.set_subscription_level st.session ~router:t.router
          ~node:t.node ~level:target;
        let now = Sim.now (sim t) in
        if target < current then
          st.deaf_until <- Time.add now t.params.deaf_period;
        st.changes <- (now, target) :: st.changes
      end

(* ---------- RLM-style fallback (params.rlm_fallback) ---------- *)

(* Ceiling on the multiplicative join timers; also the re-probe period
   once all layers are held (RLM uses 120 s against a 10–30 s initial). *)
let fb_join_max t = Time.mul_span t.params.backoff_max 4

let schedule_next_join t id st ~now =
  let count = Traffic.Layering.count (Traffic.Session.layering st.session) in
  let target = level t ~session:id + 1 in
  let timer =
    if target >= 1 && target <= count then st.join_timers.(target)
    else fb_join_max t
  in
  (* Randomize ±50% to desynchronize receivers (RLM's jitter). *)
  let jitter =
    Engine.Prng.uniform t.fb_rng ~lo:0.5 ~hi:1.5 *. Time.span_to_sec_f timer
  in
  st.next_join_at <- Time.add now (Time.span_of_sec_f jitter)

let enter_fallback t id st ~now =
  st.fb_active <- true;
  st.fb_since <- now;
  st.experiment <- None;
  t.fallback_entries <- t.fallback_entries + 1;
  schedule_next_join t id st ~now

let close_fallback st ~now =
  if st.fb_active then begin
    st.fb_active <- false;
    st.fb_total <- st.fb_total + Time.diff now st.fb_since;
    st.experiment <- None
  end

(* One watchdog tick of the standalone machine: settle the running join
   experiment, shed on sustained loss, or launch a join experiment when
   the randomized timer fires and no back-off blocks the layer. *)
let fallback_tick t id st ~now =
  let count = Traffic.Layering.count (Traffic.Session.layering st.session) in
  let current = level t ~session:id in
  let loss = if Time.(now < st.deaf_until) then 0.0 else st.last_window_loss in
  match st.experiment with
  | Some (added, settle_at) ->
      if loss > t.params.p_high then begin
        (* Failed experiment: back out, back off the layer, double its
           join timer (RLM's multiplicative backoff). *)
        t.unilateral_actions <- t.unilateral_actions + 1;
        set_level t ~session:id ~level:(added - 1);
        Backoff.arm t.fb_backoff ~session:id ~node:t.node ~layer:(added - 1)
          ~now;
        st.join_timers.(added) <-
          min (fb_join_max t) (2 * st.join_timers.(added));
        st.experiment <- None;
        schedule_next_join t id st ~now
      end
      else if Time.(now >= settle_at) then begin
        st.experiment <- None;
        schedule_next_join t id st ~now
      end
  | None ->
      if loss > t.params.p_high && current > 1 then begin
        t.unilateral_actions <- t.unilateral_actions + 1;
        set_level t ~session:id ~level:(current - 1);
        Backoff.arm t.fb_backoff ~session:id ~node:t.node ~layer:(current - 1)
          ~now;
        schedule_next_join t id st ~now
      end
      else if
        Time.(now >= st.next_join_at)
        && current < count
        && loss <= t.params.p_threshold
        && Time.(now >= st.deaf_until)
        && not
             (Backoff.active t.fb_backoff ~session:id ~node:t.node
                ~layer:current ~now)
      then begin
        t.unilateral_actions <- t.unilateral_actions + 1;
        set_level t ~session:id ~level:(current + 1);
        st.experiment <- Some (current + 1, Time.add now t.params.interval)
      end

(* Resync: a fresh in-sequence prescription ends the fallback episode;
   adopt the controller's level outright and cancel any running
   experiment. *)
let resync t id st ~suggested ~now =
  close_fallback st ~now;
  set_level t ~session:id ~level:suggested

let send_ack t ~session ~seq ~dst =
  t.acks_sent <- t.acks_sent + 1;
  Net.Network.originate t.network ~src:t.node ~dst:(Net.Addr.Unicast dst)
    ~size:Protocol.ack_size
    ~payload:(Protocol.Ack { session; receiver = t.node; seq })

(* The media fast path branches on the unboxed tag and never touches the
   boxed payload side table; control packets (rare) reconstruct theirs. *)
let on_packet t (pkt : Net.Packet.t) =
  if Net.Packet.is_data t.arena pkt then
    Stats.on_data t.stats
      ~session:(Net.Packet.session t.arena pkt)
      ~layer:(Net.Packet.layer t.arena pkt)
      ~seq:(Net.Packet.seq t.arena pkt)
      ~size:(Net.Packet.size t.arena pkt)
  else
    match Net.Packet.payload t.arena pkt with
    | Probe_discovery.Probe_query { probe_id; session } -> (
        (* Answer the discovery probe; routers fill in the hop list on the
           way back to the controller. *)
        match Hashtbl.find_opt t.sessions session with
        | None -> ()
        | Some st when st.unsubscribed -> ()
        | Some _ ->
            Net.Network.originate t.network ~src:t.node
              ~dst:(Net.Addr.Unicast (Net.Packet.src t.arena pkt))
              ~size:Probe_discovery.probe_size
              ~payload:
                (Probe_discovery.Probe_response
                   {
                     probe_id;
                     session;
                     receiver = t.node;
                     level = level t ~session;
                     hops = ref [];
                   }))
    | Controller.Suggestion { session; level = suggested; seq } -> (
        match Hashtbl.find_opt t.sessions session with
        | None -> ()
        | Some st when st.unsubscribed ->
            (* A lingering prescription computed from a stale snapshot
               after we said goodbye; obeying it would resurrect the
               membership. *)
            t.stray_suggestions <- t.stray_suggestions + 1
        | Some st -> (
            t.suggestions_received <- t.suggestions_received + 1;
            let from = Net.Packet.src t.arena pkt in
            match Protocol.admit t.proto_rx ~session ~node:from ~seq with
            | Protocol.Stale ->
                t.stale_suggestions <- t.stale_suggestions + 1
            | Protocol.Duplicate ->
                (* Already applied; the ACK must have been lost — re-ACK,
                   never re-apply. *)
                t.dup_suggestions <- t.dup_suggestions + 1;
                if t.params.reliable_prescriptions then
                  send_ack t ~session ~seq ~dst:from
            | Protocol.Fresh ->
                if t.params.reliable_prescriptions then
                  send_ack t ~session ~seq ~dst:from;
                let now = Sim.now (sim t) in
                st.last_suggestion <- now;
                if st.fb_active then resync t session st ~suggested ~now
                else begin
                  (* The controller's view of our level lags by a report;
                     obey drops verbatim but climb at most one layer at a
                     time. *)
                  let current = level t ~session in
                  let target =
                    if suggested > current then current + 1 else suggested
                  in
                  set_level t ~session ~level:target
                end))
    | _ -> ()

let create ~network ~router ~params ~node ~controller () =
  let sim = Net.Network.sim network in
  let t =
    {
      network;
      arena = Net.Network.arena network;
      router;
      params;
      node;
      controller;
      stats = Stats.create ();
      rng = Sim.rng sim ~label:(Printf.sprintf "receiver-%d" node);
      fb_rng = Sim.rng sim ~label:(Printf.sprintf "fallback-%d" node);
      fb_backoff =
        Backoff.create ~params
          ~rng:(Sim.rng sim ~label:(Printf.sprintf "fallback-backoff-%d" node));
      proto_tx = Protocol.create_tx ();
      proto_rx = Protocol.create_rx ();
      sessions = Hashtbl.create 4;
      tasks = [];
      suggestions_received = 0;
      unilateral_actions = 0;
      acks_sent = 0;
      dup_suggestions = 0;
      stale_suggestions = 0;
      stray_suggestions = 0;
      fallback_entries = 0;
    }
  in
  Net.Network.add_local_handler network node (fun pkt -> on_packet t pkt);
  t

let fresh_session_state t session ~now =
  let layers = Traffic.Layering.count (Traffic.Session.layering session) in
  {
    session;
    last_suggestion = now;
    last_window_loss = 0.0;
    probe_deadline = now;
    deaf_until = now;
    changes = [];
    unsubscribed = false;
    fb_active = false;
    fb_since = now;
    fb_total = 0;
    experiment = None;
    join_timers = Array.make (layers + 1) t.params.backoff_min;
    next_join_at = now;
  }

let subscribe t ~session ~initial_level =
  let id = Traffic.Session.id session in
  let now = Sim.now (sim t) in
  (match Hashtbl.find_opt t.sessions id with
  | Some st when st.unsubscribed ->
      (* Re-subscribe after a goodbye: keep the change log, restart the
         control machinery clean. The report sequence space keeps
         counting up, so the controller's dup/stale filter re-admits us
         on the first new report. *)
      st.unsubscribed <- false;
      st.last_suggestion <- now;
      st.last_window_loss <- 0.0;
      st.probe_deadline <- now;
      st.deaf_until <- now;
      st.fb_active <- false;
      st.experiment <- None;
      st.next_join_at <- now
  | Some _ -> invalid_arg "Receiver_agent.subscribe: already subscribed"
  | None -> Hashtbl.add t.sessions id (fresh_session_state t session ~now));
  set_level t ~session:id ~level:initial_level

let unsubscribe t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> invalid_arg "Receiver_agent.unsubscribe: unknown session"
  | Some st ->
      if not st.unsubscribed then begin
        let now = Sim.now (sim t) in
        close_fallback st ~now;
        set_level t ~session ~level:0;
        st.unsubscribed <- true;
        (* The goodbye rides the report sequence space: any report of
           ours still in flight is older and lands as stale. *)
        let seq = Protocol.next_seq t.proto_tx ~session ~node:t.node in
        Net.Network.originate t.network ~src:t.node
          ~dst:(Net.Addr.Unicast t.controller) ~size:Protocol.goodbye_size
          ~payload:(Protocol.Goodbye { session; receiver = t.node; seq })
      end

let send_reports t =
  let now = Sim.now (sim t) in
  Hashtbl.iter
    (fun id st ->
      if not st.unsubscribed then begin
        let w = Stats.take_window t.stats ~session:id in
        (* Loss measured while the network is still draining a drop we just
           made is reported truthfully (the controller needs it to correlate
           siblings and estimate capacities) but flagged as settling so it
           does not trigger a further reduction of this receiver. *)
        let settling = Time.(now < st.deaf_until) in
        st.last_window_loss <- w.loss_rate;
        Reports.Rtcp.send_report ~network:t.network ~receiver:t.node
          ~controller:t.controller ~session:id ~level:(level t ~session:id)
          ~window:t.params.report_interval ~settling
          ~seq:(Protocol.next_seq t.proto_tx ~session:id ~node:t.node)
          w
      end)
    t.sessions

(* Unilateral fallback: the controller has gone quiet for this session —
   keep reception safe without it. With [rlm_fallback] the full
   standalone join-experiment machine takes over; otherwise the legacy
   probe/shed watchdog: sustained high loss sheds the top layer, clean
   reception probes one layer up at a randomized period. *)
let watchdog t =
  let now = Sim.now (sim t) in
  let timeout = Time.mul_span t.params.interval t.params.suggestion_timeout_intervals in
  Hashtbl.iter
    (fun id st ->
      if st.unsubscribed then ()
      else if t.params.rlm_fallback then begin
        if Time.diff now st.last_suggestion > timeout then begin
          if not st.fb_active then enter_fallback t id st ~now;
          fallback_tick t id st ~now
        end
      end
      else if Time.diff now st.last_suggestion > timeout then begin
        let current = level t ~session:id in
        if
          st.last_window_loss > t.params.p_high
          && current > 1
          && Time.(now >= st.deaf_until)
        then begin
          t.unilateral_actions <- t.unilateral_actions + 1;
          set_level t ~session:id ~level:(current - 1);
          st.probe_deadline <-
            Time.add now
              (Engine.Prng.int t.rng
                 ~bound:(t.params.backoff_max - t.params.backoff_min + 1)
              + t.params.backoff_min)
        end
        else if
          st.last_window_loss <= t.params.p_threshold
          && Time.(now >= st.probe_deadline)
          (* Same deaf guard as the shed branch: a join experiment while
             the network is still draining a drop we just made would read
             the settling loss as the new layer's fault. *)
          && Time.(now >= st.deaf_until)
          && current < Traffic.Layering.count (Traffic.Session.layering st.session)
        then begin
          t.unilateral_actions <- t.unilateral_actions + 1;
          set_level t ~session:id ~level:(current + 1);
          st.probe_deadline <-
            Time.add now
              (Engine.Prng.int t.rng
                 ~bound:(t.params.backoff_max - t.params.backoff_min + 1)
              + t.params.backoff_min)
        end
      end)
    t.sessions

let start t =
  if t.tasks = [] then begin
    let s = sim t in
    t.tasks <-
      [
        Sim.every s ~period:t.params.report_interval (fun () -> send_reports t);
        Sim.every s ~period:t.params.interval (fun () -> watchdog t);
      ]
  end

let stop t =
  List.iter (Sim.cancel (sim t)) t.tasks;
  t.tasks <- []

let changes t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> []
  | Some st -> List.rev st.changes

let last_window_loss t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> 0.0
  | Some st -> st.last_window_loss

let last_suggestion_at t ~session =
  Option.map
    (fun st -> st.last_suggestion)
    (Hashtbl.find_opt t.sessions session)

let set_controller t ~controller = t.controller <- controller
let controller t = t.controller

let suggestions_received t = t.suggestions_received
let unilateral_actions t = t.unilateral_actions
let acks_sent t = t.acks_sent
let dup_suggestions t = t.dup_suggestions
let stale_suggestions t = t.stale_suggestions
let stray_suggestions t = t.stray_suggestions
let fallback_entries t = t.fallback_entries

let fallback_active t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> false
  | Some st -> st.fb_active

let fallback_seconds t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> 0.0
  | Some st ->
      let open_span =
        if st.fb_active then Time.diff (Sim.now (sim t)) st.fb_since else 0
      in
      Time.span_to_sec_f (st.fb_total + open_span)

let node t = t.node

let sessions t =
  Hashtbl.fold
    (fun _ st acc ->
      if st.unsubscribed then acc else st.session :: acc)
    t.sessions []
