(** Two-level controller federation for scaled worlds.

    The paper's Fig. 3 places one controller per administrative domain;
    at 10k–1M receivers a single flat controller would hold per-receiver
    state for the whole population. The federation splits the job: each
    {e leaf} controller prescribes for its own domain from a restricted
    snapshot ({!Discovery.Snapshot.restrict}) and, once per TopoSense
    interval, unicasts one fixed-size {!Domain_summary} per session to a
    {e parent}. The parent never sees receivers — it keeps exactly one
    slot per (session, domain) pair, so its state and the control
    traffic it absorbs are O(domains), independent of receiver count
    (pinned by a counter test). *)

type Net.Packet.payload +=
  | Domain_summary of {
      domain : int;
      session : int;
      seq : int;  (** per-leaf, for dropping reordered stragglers *)
      receivers : int;  (** active receivers the leaf is managing *)
      mean_level : float;
      mean_loss : float;
      congested : int;  (** receivers at/above [p_threshold] loss *)
    }

val summary_size : int
(** Wire size of one summary packet (bytes). *)

(** {1 Leaf side} *)

type leaf

val leaf : parent:Net.Addr.node_id -> domain_id:int -> leaf
(** Handed to {!Controller.create} via [?federation]; the controller
    then emits one summary per session per interval.
    @raise Invalid_argument on a negative [domain_id]. *)

val send_summary :
  leaf ->
  network:Net.Network.t ->
  src:Net.Addr.node_id ->
  session:int ->
  receivers:int ->
  mean_level:float ->
  mean_loss:float ->
  congested:int ->
  unit
(** Originates one summary to the leaf's parent (self-addressed works:
    the network delivers locally). Used by {!Controller}; exposed for
    tests. *)

(** {1 Parent side} *)

type parent

val create_parent :
  network:Net.Network.t -> node:Net.Addr.node_id -> parent
(** Installs a local handler at [node] consuming {!Domain_summary}
    packets. Coexists with other local handlers (e.g. a leaf controller
    on the same node). *)

type aggregate = {
  domains : int;  (** domains that have reported this session *)
  receivers : int;  (** sum of the latest per-domain receiver counts *)
  mean_level : float;  (** receiver-weighted *)
  mean_loss : float;  (** receiver-weighted *)
  congested_domains : int;  (** domains with at least one congested receiver *)
}

val aggregate : parent -> session:int -> aggregate option
(** Session-wide picture folded from the latest per-domain slots;
    [None] if no domain has reported yet. O(domains). *)

val sessions : parent -> int list
(** Sessions with at least one slot, ascending. *)

val parent_node : parent -> Net.Addr.node_id
val summaries_received : parent -> int

val stale_dropped : parent -> int
(** Reordered summaries dropped by the per-leaf sequence check. *)

val state_entries : parent -> int
(** Live (session, domain) slots — the parent's entire footprint. The
    scale scenario asserts this stays at sessions x domains while
    receiver counts grow 10x. *)
