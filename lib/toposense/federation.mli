(** Two-level controller federation for scaled worlds.

    The paper's Fig. 3 places one controller per administrative domain;
    at 10k–1M receivers a single flat controller would hold per-receiver
    state for the whole population. The federation splits the job: each
    {e leaf} controller prescribes for its own domain from a restricted
    snapshot ({!Discovery.Snapshot.restrict}) and, once per TopoSense
    interval, unicasts one fixed-size {!Domain_summary} per session to a
    {e parent}. The parent never sees receivers — it keeps exactly one
    slot per (session, domain) pair, so its state and the control
    traffic it absorbs are O(domains), independent of receiver count
    (pinned by a counter test).

    The parent additionally holds a {e liveness lease} on every domain's
    summary stream: a domain silent longer than the lease is marked
    degraded and handed to a failover target (a configured standby leaf,
    or the parent itself for direct prescriptions from the unrestricted
    snapshot); a leaf that comes back rejoins by rebasing its sequence
    space under a higher epoch. All of it is inert until
    {!start_failover} arms the monitor. *)

type Net.Packet.payload +=
  | Domain_summary of {
      domain : int;
      session : int;
      epoch : int;
          (** bumped by {!rebase} when the leaf restarts; lets the
              parent tell a rebased stream from reordered stragglers *)
      seq : int;  (** per-leaf per-epoch, for dropping reordered stragglers *)
      receivers : int;  (** active receivers the leaf is managing *)
      mean_level : float;
      mean_loss : float;
      congested : int;  (** receivers at/above [p_threshold] loss *)
    }

val summary_size : int
(** Wire size of one summary packet (bytes). The epoch rides in the
    header's former padding — adding it did not change the size, so
    runs without leaf restarts stay byte-identical. *)

(** {1 Leaf side} *)

type leaf

val leaf : parent:Net.Addr.node_id -> domain_id:int -> leaf
(** Handed to {!Controller.create} via [?federation]; the controller
    then emits one summary per session per interval.
    @raise Invalid_argument on a negative [domain_id]. *)

val rebase : leaf -> unit
(** Restart recovery: bumps the epoch and restarts the sequence space at
    0. The parent accepts the first summary of the new epoch whatever
    its seq, and drops any straggler from the old one.
    {!Controller.start} calls this when restarting a stopped federated
    controller. *)

val leaf_epoch : leaf -> int

val send_summary :
  leaf ->
  network:Net.Network.t ->
  src:Net.Addr.node_id ->
  session:int ->
  receivers:int ->
  mean_level:float ->
  mean_loss:float ->
  congested:int ->
  unit
(** Originates one summary to the leaf's parent (self-addressed works:
    the network delivers locally). Used by {!Controller}; exposed for
    tests. *)

(** {1 Parent side} *)

type parent

val create_parent :
  network:Net.Network.t -> node:Net.Addr.node_id -> parent
(** Installs a local handler at [node] consuming {!Domain_summary}
    packets. Coexists with other local handlers (e.g. a leaf controller
    on the same node). *)

type aggregate = {
  domains : int;  (** healthy domains that have reported this session *)
  receivers : int;  (** sum of the latest per-domain receiver counts *)
  mean_level : float;  (** receiver-weighted *)
  mean_loss : float;  (** receiver-weighted *)
  congested_domains : int;  (** domains with at least one congested receiver *)
}

val aggregate : parent -> session:int -> aggregate option
(** Session-wide picture folded from the latest per-domain slots;
    [None] if no domain has reported yet. Degraded domains are excluded
    — their slots hold data the liveness lease already declared dead, so
    the receiver-weighted means stay consistent while a domain is dark
    mid-interval. O(domains). *)

val sessions : parent -> int list
(** Sessions with at least one slot, ascending. *)

val parent_node : parent -> Net.Addr.node_id
val summaries_received : parent -> int

val stale_dropped : parent -> int
(** Reordered or pre-restart summaries dropped by the per-leaf
    epoch/sequence check. *)

val state_entries : parent -> int
(** Live (session, domain) slots — the parent's entire footprint. The
    scale scenario asserts this stays at sessions x domains while
    receiver counts grow 10x. *)

(** {1 Leaf-controller failover} *)

val start_failover :
  parent ->
  check_period:Engine.Time.span ->
  silence:Engine.Time.span ->
  ?on_degraded:(domain:int -> target:Net.Addr.node_id -> unit) ->
  ?on_rejoined:(domain:int -> unit) ->
  unit ->
  unit
(** Arms the liveness monitor: every [check_period] it sweeps the slots,
    and a domain whose freshest summary is older than [silence] is
    marked degraded. [on_degraded] fires once per degradation with the
    failover target — the domain's configured standby
    ({!set_standby}), or the parent's own node for direct re-homing —
    and the scenario layer re-points the domain's receiver agents at it
    (they ride the RLM fallback until prescriptions resume).
    [on_rejoined] fires when a degraded domain's summaries return.
    @raise Invalid_argument if already armed or on a non-positive
    period/silence. *)

val stop_failover : parent -> unit

val set_standby : parent -> domain:int -> node:Net.Addr.node_id -> unit
(** Configures a standby leaf node as [domain]'s failover target. *)

val set_rehome_counter : parent -> (unit -> int) -> unit
(** Registers the suggestion counter of the controller that serves
    re-homed domains (typically
    [fun () -> Controller.suggestions_sent c] for the parent-side
    controller). The monitor samples it as a delta while at least one
    domain is degraded, attributing those prescriptions to
    {!rehomed_prescriptions}. *)

val domain_is_degraded : parent -> domain:int -> bool

val degraded_now : parent -> int
(** Domains currently degraded (gauge). *)

(** Failover counters (cumulative). *)

val domains_degraded : parent -> int
(** Degradation events: silent-domain detections by the monitor. *)

val failovers : parent -> int
(** Degradations for which a failover target was engaged (all of them —
    the parent itself is the target of last resort). *)

val rejoins : parent -> int
(** Degraded domains whose summary stream came back. *)

val rehomed_prescriptions : parent -> int
(** Prescriptions the re-home controller issued during degraded
    windows (see {!set_rehome_counter}). *)
