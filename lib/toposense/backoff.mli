(** Back-off timers for dropped layers.

    When a drop decision is taken at a node, the layer just dropped is
    put on back-off for a random interval so no receiver in that node's
    subtree immediately re-subscribes it (the paper credits this random
    back-off for the variance in its stability plots). A timer is keyed
    by (session, node, layer); a leaf asks whether a layer is backed off
    *anywhere on its path to the source*. *)

type t

val create : params:Params.t -> rng:Engine.Prng.t -> t

val arm :
  t -> session:int -> node:Net.Addr.node_id -> layer:int -> now:Engine.Time.t -> unit
(** Starts (or restarts) a timer of random length in
    [backoff_min, backoff_max]. *)

val active :
  t -> session:int -> node:Net.Addr.node_id -> layer:int -> now:Engine.Time.t -> bool

val blocked_on_path :
  t ->
  session:int ->
  tree:Tree.t ->
  leaf:Net.Addr.node_id ->
  layer:int ->
  now:Engine.Time.t ->
  bool
(** True when the layer is backed off at the leaf or any of its
    ancestors in the session tree. *)

val clear : t -> unit
(** Drops all timers (tests). *)

val clear_session : t -> session:int -> unit
(** Drops every timer of one session. Long-running controllers call this
    on session teardown so timers for departed sessions do not accumulate
    forever. *)
