(** Stage 5: demand computation and supply allocation.

    Runs once per TopoSense interval per session, carrying per-node state
    across intervals (congestion-state history, received-bytes history,
    granted-supply history — the indices into Table I).

    Demand flows bottom-up: a leaf turns its Table I action into a
    bandwidth demand (its current cumulative rate, one more layer, or a
    reduction toward past supply); an internal node aggregates its
    children — the *maximum* child demand, because layers on its inbound
    link are shared — then applies its own Table I row. A node whose
    parent is congested defers: it passes its aggregate through and lets
    the root of the congested subtree act (which also arms the back-off
    timer for the highest layer it drops).

    Supply flows top-down: each node receives the minimum of its demand,
    its parent's supply and the stage-4 cap of its inbound edge. A member
    leaf's prescription is the largest level its supply affords, adding
    at most one layer per interval and never adding a layer that is
    backing off on its path. *)

type t

val create : params:Params.t -> backoff:Backoff.t -> t

type input = {
  session : int;
  layering : Traffic.Layering.t;
  tree : Tree.t;
  verdicts : (Net.Addr.node_id, Congestion.verdict) Hashtbl.t;
  level_of : Net.Addr.node_id -> int;
      (** current subscription level of a member leaf *)
  may_add : Net.Addr.node_id -> bool;
      (** false while a leaf's last level change is younger than the
          feedback loop: the loss evidence for the new level has not
          arrived yet, and adding again would overshoot by two layers *)
  frozen : Net.Addr.node_id -> bool;
      (** settling leaves: loss counts as evidence upstream but must not
          reduce this leaf again *)
  edge_cap : Net.Addr.node_id * Net.Addr.node_id -> float;
      (** stage-4 cap for this session on a physical edge, bits/s *)
}

val step :
  t -> now:Engine.Time.t -> input -> (Net.Addr.node_id * int) list
(** Prescribed subscription levels for the session's member leaves,
    sorted by node id. Also advances all per-node histories. *)

val remove_session : t -> session:int -> unit
(** Drops all per-node state of one session (session teardown). *)

val demand_bps : t -> session:int -> node:Net.Addr.node_id -> float option
(** Last computed demand at a node (diagnostics and tests). *)

val supply_bps : t -> session:int -> node:Net.Addr.node_id -> float option
