module Sim = Engine.Sim
module Time = Engine.Time

type Net.Packet.payload +=
  | Domain_summary of {
      domain : int;
      session : int;
      seq : int;
      receivers : int;
      mean_level : float;
      mean_loss : float;
      congested : int;
    }

let summary_size = 56

type leaf = {
  parent : Net.Addr.node_id;
  domain_id : int;
  mutable next_seq : int;
}

let leaf ~parent ~domain_id =
  if domain_id < 0 then invalid_arg "Federation.leaf: negative domain_id";
  { parent; domain_id; next_seq = 0 }

(* Latest summary for one (session, domain) pair. Overwritten in place:
   the parent's footprint is exactly one slot per pair, independent of
   how many receivers live behind the leaf. *)
type slot = {
  mutable seq : int;
  mutable receivers : int;
  mutable mean_level : float;
  mutable mean_loss : float;
  mutable congested : int;
  mutable updated_at : Time.t;
}

type parent = {
  network : Net.Network.t;
  node : Net.Addr.node_id;
  slots : (int * int, slot) Hashtbl.t;  (* (session, domain) -> latest *)
  mutable summaries_received : int;
  mutable stale_dropped : int;
}

type aggregate = {
  domains : int;
  receivers : int;
  mean_level : float;
  mean_loss : float;
  congested_domains : int;
}

let on_summary t ~domain ~session ~seq ~receivers ~mean_level ~mean_loss
    ~congested =
  t.summaries_received <- t.summaries_received + 1;
  let now = Sim.now (Net.Network.sim t.network) in
  match Hashtbl.find_opt t.slots (session, domain) with
  | Some slot when seq <= slot.seq ->
      (* A reroute can reorder unicast summaries; the newer picture
         already landed, so the straggler is dropped rather than rolling
         the domain's state backwards. *)
      t.stale_dropped <- t.stale_dropped + 1
  | Some slot ->
      slot.seq <- seq;
      slot.receivers <- receivers;
      slot.mean_level <- mean_level;
      slot.mean_loss <- mean_loss;
      slot.congested <- congested;
      slot.updated_at <- now
  | None ->
      Hashtbl.add t.slots (session, domain)
        { seq; receivers; mean_level; mean_loss; congested; updated_at = now }

let create_parent ~network ~node =
  let t =
    {
      network;
      node;
      slots = Hashtbl.create 16;
      summaries_received = 0;
      stale_dropped = 0;
    }
  in
  Net.Network.add_local_handler network node (fun pkt ->
      match pkt.Net.Packet.payload with
      | Domain_summary
          { domain; session; seq; receivers; mean_level; mean_loss; congested }
        ->
          on_summary t ~domain ~session ~seq ~receivers ~mean_level ~mean_loss
            ~congested
      | _ -> ());
  t

let parent_node t = t.node
let summaries_received t = t.summaries_received
let stale_dropped t = t.stale_dropped
let state_entries t = Hashtbl.length t.slots

let sessions t =
  Hashtbl.fold (fun (session, _) _ acc -> session :: acc) t.slots []
  |> List.sort_uniq Int.compare

let aggregate t ~session =
  let slots : (int * slot) list =
    Hashtbl.fold
      (fun (s, domain) slot acc ->
        if s = session then (domain, slot) :: acc else acc)
      t.slots []
  in
  match slots with
  | [] -> None
  | _ ->
      let domains = List.length slots in
      let receivers =
        List.fold_left (fun acc ((_, s) : int * slot) -> acc + s.receivers) 0 slots
      in
      (* Receiver-weighted means, so a 10-receiver stub does not count as
         much as a 10k-receiver one; domains that reported zero active
         receivers contribute nothing. *)
      let wsum f =
        List.fold_left
          (fun acc ((_, s) : int * slot) ->
            acc +. (float_of_int s.receivers *. f s))
          0.0 slots
      in
      let mean_level, mean_loss =
        if receivers = 0 then (0.0, 0.0)
        else
          ( wsum (fun s -> s.mean_level) /. float_of_int receivers,
            wsum (fun s -> s.mean_loss) /. float_of_int receivers )
      in
      let congested_domains =
        List.fold_left
          (fun acc ((_, s) : int * slot) ->
            if s.congested > 0 then acc + 1 else acc)
          0 slots
      in
      Some { domains; receivers; mean_level; mean_loss; congested_domains }

let send_summary leaf ~network ~src ~session ~receivers ~mean_level ~mean_loss
    ~congested =
  let seq = leaf.next_seq in
  leaf.next_seq <- seq + 1;
  Net.Network.originate network ~src ~dst:(Net.Addr.Unicast leaf.parent)
    ~size:summary_size
    ~payload:
      (Domain_summary
         {
           domain = leaf.domain_id;
           session;
           seq;
           receivers;
           mean_level;
           mean_loss;
           congested;
         })
