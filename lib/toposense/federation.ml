module Sim = Engine.Sim
module Time = Engine.Time

type Net.Packet.payload +=
  | Domain_summary of {
      domain : int;
      session : int;
      epoch : int;
      seq : int;
      receivers : int;
      mean_level : float;
      mean_loss : float;
      congested : int;
    }

(* The epoch rides in the summary header's former padding, so the wire
   size is unchanged — a run that never restarts a leaf is byte-identical
   with the field present (same discipline as the always-on report
   seqs). *)
let summary_size = 56

type leaf = {
  parent : Net.Addr.node_id;
  domain_id : int;
  mutable epoch : int;
  mutable next_seq : int;
}

let leaf ~parent ~domain_id =
  if domain_id < 0 then invalid_arg "Federation.leaf: negative domain_id";
  { parent; domain_id; epoch = 0; next_seq = 0 }

let rebase leaf =
  leaf.epoch <- leaf.epoch + 1;
  leaf.next_seq <- 0

let leaf_epoch leaf = leaf.epoch

(* Latest summary for one (session, domain) pair. Overwritten in place:
   the parent's footprint is exactly one slot per pair, independent of
   how many receivers live behind the leaf. *)
type slot = {
  mutable epoch : int;
  mutable seq : int;
  mutable receivers : int;
  mutable mean_level : float;
  mutable mean_loss : float;
  mutable congested : int;
  mutable updated_at : Time.t;
}

type parent = {
  network : Net.Network.t;
  node : Net.Addr.node_id;
  slots : (int * int, slot) Hashtbl.t;  (* (session, domain) -> latest *)
  mutable summaries_received : int;
  mutable stale_dropped : int;
  (* Failover state — all inert until [start_failover] arms the
     monitor. *)
  degraded : (int, unit) Hashtbl.t;  (* domains currently degraded *)
  standby : (int, Net.Addr.node_id) Hashtbl.t;  (* domain -> standby leaf *)
  monitor_scratch : (int, Time.t) Hashtbl.t;
      (* tick-lived freshest-summary-per-domain map, cleared and refilled
         on every monitor firing rather than reallocated *)
  mutable rehome_sent : (unit -> int) option;
  mutable rehome_last : int;
  mutable monitor : Sim.handle option;
  mutable on_degraded :
    (domain:int -> target:Net.Addr.node_id -> unit) option;
  mutable on_rejoined : (domain:int -> unit) option;
  mutable domains_degraded : int;
  mutable failovers : int;
  mutable rejoins : int;
  mutable rehomed_prescriptions : int;
}

type aggregate = {
  domains : int;
  receivers : int;
  mean_level : float;
  mean_loss : float;
  congested_domains : int;
}

(* Prescriptions the re-home target issued while at least one domain was
   degraded. Sampled as a counter delta at every monitor tick and at
   every rejoin, so the attribution window closes with the degradation. *)
let sample_rehome t =
  match t.rehome_sent with
  | None -> ()
  | Some sent ->
      let cur = sent () in
      if Hashtbl.length t.degraded > 0 then
        t.rehomed_prescriptions <-
          t.rehomed_prescriptions + (cur - t.rehome_last);
      t.rehome_last <- cur

let note_alive t ~domain =
  if Hashtbl.mem t.degraded domain then begin
    sample_rehome t;
    Hashtbl.remove t.degraded domain;
    t.rejoins <- t.rejoins + 1;
    match t.on_rejoined with Some f -> f ~domain | None -> ()
  end

let on_summary t ~domain ~session ~epoch ~seq ~receivers ~mean_level
    ~mean_loss ~congested =
  t.summaries_received <- t.summaries_received + 1;
  let now = Sim.now (Net.Network.sim t.network) in
  match Hashtbl.find_opt t.slots (session, domain) with
  | Some slot when epoch < slot.epoch || (epoch = slot.epoch && seq <= slot.seq)
    ->
      (* A reroute can reorder unicast summaries; the newer picture
         already landed, so the straggler is dropped rather than rolling
         the domain's state backwards. A lower epoch is a straggler from
         before the leaf's restart — the rebased stream has already
         superseded it. *)
      t.stale_dropped <- t.stale_dropped + 1
  | Some slot ->
      (* [epoch > slot.epoch] is the seq rebase: the first summary of a
         restarted leaf's stream is accepted whatever its seq. *)
      slot.epoch <- epoch;
      slot.seq <- seq;
      slot.receivers <- receivers;
      slot.mean_level <- mean_level;
      slot.mean_loss <- mean_loss;
      slot.congested <- congested;
      slot.updated_at <- now;
      note_alive t ~domain
  | None ->
      Hashtbl.add t.slots (session, domain)
        {
          epoch;
          seq;
          receivers;
          mean_level;
          mean_loss;
          congested;
          updated_at = now;
        };
      note_alive t ~domain

let create_parent ~network ~node =
  let t =
    {
      network;
      node;
      slots = Hashtbl.create 16;
      summaries_received = 0;
      stale_dropped = 0;
      degraded = Hashtbl.create 8;
      standby = Hashtbl.create 8;
      monitor_scratch = Hashtbl.create 8;
      rehome_sent = None;
      rehome_last = 0;
      monitor = None;
      on_degraded = None;
      on_rejoined = None;
      domains_degraded = 0;
      failovers = 0;
      rejoins = 0;
      rehomed_prescriptions = 0;
    }
  in
  let arena = Net.Network.arena network in
  Net.Network.add_local_handler network node (fun pkt ->
      if Net.Packet.is_data arena pkt then ()
      else
      match Net.Packet.payload arena pkt with
      | Domain_summary
          {
            domain;
            session;
            epoch;
            seq;
            receivers;
            mean_level;
            mean_loss;
            congested;
          } ->
          on_summary t ~domain ~session ~epoch ~seq ~receivers ~mean_level
            ~mean_loss ~congested
      | _ -> ());
  t

let set_standby t ~domain ~node = Hashtbl.replace t.standby domain node

let set_rehome_counter t sent =
  t.rehome_sent <- Some sent;
  t.rehome_last <- sent ()

let start_failover t ~check_period ~silence ?on_degraded ?on_rejoined () =
  if t.monitor <> None then
    invalid_arg "Federation.start_failover: monitor already running";
  if check_period <= 0 then
    invalid_arg "Federation.start_failover: non-positive check_period";
  if silence <= 0 then
    invalid_arg "Federation.start_failover: non-positive silence";
  t.on_degraded <- on_degraded;
  t.on_rejoined <- on_rejoined;
  let sim = Net.Network.sim t.network in
  t.monitor <-
    Some
      (Sim.every sim ~period:check_period (fun () ->
           sample_rehome t;
           let now = Sim.now sim in
           (* freshest summary per domain, over all its sessions *)
           let latest = t.monitor_scratch in
           Hashtbl.clear latest;
           Hashtbl.iter
             (fun (_, domain) slot ->
               match Hashtbl.find_opt latest domain with
               | Some ts when Time.(ts >= slot.updated_at) -> ()
               | _ -> Hashtbl.replace latest domain slot.updated_at)
             t.slots;
           Hashtbl.fold (fun d ts acc -> (d, ts) :: acc) latest []
           |> List.sort compare
           |> List.iter (fun (domain, ts) ->
                  if
                    (not (Hashtbl.mem t.degraded domain))
                    && Time.(add ts silence < now)
                  then begin
                    (* the lease on the summary stream expired: the
                       domain's leaf has gone silent *)
                    Hashtbl.replace t.degraded domain ();
                    t.domains_degraded <- t.domains_degraded + 1;
                    t.failovers <- t.failovers + 1;
                    let target =
                      match Hashtbl.find_opt t.standby domain with
                      | Some n -> n
                      | None -> t.node
                    in
                    match t.on_degraded with
                    | Some f -> f ~domain ~target
                    | None -> ()
                  end)))

let stop_failover t =
  match t.monitor with
  | Some h ->
      Sim.cancel (Net.Network.sim t.network) h;
      t.monitor <- None
  | None -> ()

let domain_is_degraded t ~domain = Hashtbl.mem t.degraded domain
let degraded_now t = Hashtbl.length t.degraded
let parent_node t = t.node
let summaries_received t = t.summaries_received
let stale_dropped t = t.stale_dropped
let state_entries t = Hashtbl.length t.slots
let domains_degraded t = t.domains_degraded
let failovers t = t.failovers
let rejoins t = t.rejoins
let rehomed_prescriptions t = t.rehomed_prescriptions

let sessions t =
  Hashtbl.fold (fun (session, _) _ acc -> session :: acc) t.slots []
  |> List.sort_uniq Int.compare

let aggregate t ~session =
  let slots : (int * slot) list =
    Hashtbl.fold
      (fun (s, domain) slot acc ->
        (* A degraded domain's slot is whatever it last said before going
           silent; folding it in would weight the aggregate with data the
           liveness lease has already declared dead. *)
        if s = session && not (Hashtbl.mem t.degraded domain) then
          (domain, slot) :: acc
        else acc)
      t.slots []
  in
  match slots with
  | [] -> None
  | _ ->
      let domains = List.length slots in
      let receivers =
        List.fold_left (fun acc ((_, s) : int * slot) -> acc + s.receivers) 0 slots
      in
      (* Receiver-weighted means, so a 10-receiver stub does not count as
         much as a 10k-receiver one; domains that reported zero active
         receivers contribute nothing. *)
      let wsum f =
        List.fold_left
          (fun acc ((_, s) : int * slot) ->
            acc +. (float_of_int s.receivers *. f s))
          0.0 slots
      in
      let mean_level, mean_loss =
        if receivers = 0 then (0.0, 0.0)
        else
          ( wsum (fun s -> s.mean_level) /. float_of_int receivers,
            wsum (fun s -> s.mean_loss) /. float_of_int receivers )
      in
      let congested_domains =
        List.fold_left
          (fun acc ((_, s) : int * slot) ->
            if s.congested > 0 then acc + 1 else acc)
          0 slots
      in
      Some { domains; receivers; mean_level; mean_loss; congested_domains }

let send_summary leaf ~network ~src ~session ~receivers ~mean_level ~mean_loss
    ~congested =
  let seq = leaf.next_seq in
  leaf.next_seq <- seq + 1;
  Net.Network.originate network ~src ~dst:(Net.Addr.Unicast leaf.parent)
    ~size:summary_size
    ~payload:
      (Domain_summary
         {
           domain = leaf.domain_id;
           session;
           epoch = leaf.epoch;
           seq;
           receivers;
           mean_level;
           mean_loss;
           congested;
         })
