module Sim = Engine.Sim
module Time = Engine.Time

type Net.Packet.payload +=
  | Suggestion of { session : int; level : int; seq : int }

let suggestion_size = 60

(* Report accumulation between algorithm runs. *)
type acc = {
  mutable loss_sum : float;
  mutable report_count : int;
  mutable bytes : int;
  mutable level : int;
  mutable settling : bool;
  mutable any_sustained : bool;
}

type status = Active | Evicted | Departed

(* An unACKed prescription awaiting retransmission (only with
   [reliable_prescriptions]). *)
type pending = { seq : int; level : int; attempt : int; handle : Sim.handle }

type receiver_state = {
  mutable fresh : acc option;  (* reports since the last run *)
  mutable last_loss : float;  (* carried forward when reports are lost *)
  mutable last_level : int;
  mutable level_changed_at : Time.t;  (* when a report last showed a new level *)
  mutable last_report_at : Time.t;  (* lease refresh *)
  mutable status : status;
  mutable pending : pending option;
}

type t = {
  network : Net.Network.t;
  discovery : Discovery.Service.t;
  params : Params.t;
  node : Net.Addr.node_id;
  domain : Net.Addr.node_id list option;
  probe : Probe_discovery.t option;
  federation : Federation.leaf option;
  algorithm : Algorithm.t;
  mutable sessions_rev : Traffic.Session.t list;
      (** newest first; O(1) registration, reversed at each use *)
  receivers : (int * Net.Addr.node_id, receiver_state) Hashtbl.t;
  known : (int, Util.Bitset.t) Hashtbl.t;
      (** per-session lease book: receivers a report was admitted from.
          Consulted (only) under [prescribe_known_only] so the
          controller's state and suggestion traffic scale with the
          receivers that actually talk to it, not with tree size *)
  settling_scratch : (int, unit) Hashtbl.t;
      (** interval-lived scratch behind [session_input]'s [frozen]
          closures, keyed [(node lsl 21) lor session] (node ids stay
          well under 2^42, session ids under 2^21). Shared across the
          interval's sessions — the closures are all consulted inside
          the same [Algorithm.step] — and cleared once per interval, so
          the per-session [Hashtbl.create] is off the steady-state
          allocation profile. *)
  proto_tx : Protocol.tx;  (* prescription seq, per (session, receiver) *)
  proto_rx : Protocol.rx;  (* report/goodbye seq, per (session, receiver) *)
  proto_rng : Engine.Prng.t;
      (* dedicated stream: retransmission jitter must not perturb the
         algorithm's or the receivers' randomness *)
  mutable task : Sim.handle option;
  mutable running : bool;
      (** between {!start}/{!stop}; a stopped controller is deaf, so a
          restart resumes from state no fresher than the outage *)
  mutable was_stopped : bool;
      (** a restart after a stop models a process coming back: the
          federation leaf's summary stream is rebased so the parent can
          tell the new incarnation from old stragglers *)
  mutable reports_received : int;
  mutable suggestions_sent : int;
  mutable self_suppressed : int;
  mutable lease_suppressed : int;
  mutable unknown_suppressed : int;
  mutable summaries_sent : int;
  mutable invalid_snapshots : int;
  mutable intervals_run : int;
  mutable skipped_no_snapshot : int;
  mutable evictions : int;
  mutable readmissions : int;
  mutable retransmits : int;
  mutable give_ups : int;
  mutable stale_rejected : int;
  mutable acks_received : int;
  mutable goodbyes_received : int;
  mutable billing : Billing.t option;
}

let receiver_state t ~session ~node =
  match Hashtbl.find_opt t.receivers (session, node) with
  | Some s -> s
  | None ->
      let now = Sim.now (Net.Network.sim t.network) in
      let s =
        {
          fresh = None;
          last_loss = 0.0;
          last_level = 0;
          level_changed_at = now;
          last_report_at = now;
          status = Active;
          pending = None;
        }
      in
      Hashtbl.add t.receivers (session, node) s;
      s

let cancel_pending t st =
  match st.pending with
  | None -> ()
  | Some p ->
      Sim.cancel (Net.Network.sim t.network) p.handle;
      st.pending <- None

let known_set t ~session =
  match Hashtbl.find_opt t.known session with
  | Some s -> s
  | None ->
      let s = Util.Bitset.create () in
      Hashtbl.add t.known session s;
      s

let on_report t ~session ~receiver ~level ~loss_rate ~bytes ~settling
    ~sustained =
  t.reports_received <- t.reports_received + 1;
  Util.Bitset.add (known_set t ~session) receiver;
  let st = receiver_state t ~session ~node:receiver in
  let now = Sim.now (Net.Network.sim t.network) in
  (match st.status with
  | Active -> ()
  | Evicted | Departed ->
      (* Soft-state re-admission: the lease expired (or the receiver said
         goodbye) and this is a genuinely new report — start clean.
         Rebase the level-change clock on the reported level rather than
         resetting it: the receiver has been holding that level on its
         own, and charging it the full post-change settling hold here
         would delay reconvergence by two extra intervals. If the
         snapshot disagrees (a real change), [session_input] still
         resets the clock. *)
      t.readmissions <- t.readmissions + 1;
      st.status <- Active;
      st.fresh <- None;
      st.last_loss <- 0.0;
      st.last_level <- level);
  st.last_report_at <- now;
  (match st.fresh with
  | Some a ->
      a.loss_sum <- a.loss_sum +. loss_rate;
      a.report_count <- a.report_count + 1;
      a.bytes <- a.bytes + bytes;
      a.level <- level;
      a.settling <- a.settling || settling;
      a.any_sustained <- a.any_sustained || sustained
  | None ->
      st.fresh <-
        Some
          {
            loss_sum = loss_rate;
            report_count = 1;
            bytes;
            level;
            settling;
            any_sustained = sustained;
          });
  (* [level] rides along in the report but the controller's view of
     subscription levels comes from the topology image (possibly stale),
     as in the paper — that is exactly the lever Fig. 10 studies. The
     reported level is only consulted at re-admission, above. *)
  ()

let on_goodbye t ~session ~receiver =
  t.goodbyes_received <- t.goodbyes_received + 1;
  let st = receiver_state t ~session ~node:receiver in
  st.status <- Departed;
  st.fresh <- None;
  st.last_loss <- 0.0;
  cancel_pending t st

let on_ack t ~session ~receiver ~seq =
  t.acks_received <- t.acks_received + 1;
  match Hashtbl.find_opt t.receivers (session, receiver) with
  | None -> ()
  | Some st -> (
      match st.pending with
      | Some p when p.seq = seq -> cancel_pending t st
      | _ -> () (* ACK for a superseded prescription; the newer one stands *))

let create ~network ~discovery ~params ~node ?domain ?probe ?federation () =
  let sim = Net.Network.sim network in
  let t =
    {
      network;
      discovery;
      params;
      node;
      domain;
      probe;
      federation;
      algorithm = Algorithm.create ~params ~rng:(Sim.rng sim ~label:"toposense");
      sessions_rev = [];
      receivers = Hashtbl.create 64;
      known = Hashtbl.create 8;
      settling_scratch = Hashtbl.create 64;
      proto_tx = Protocol.create_tx ();
      proto_rx = Protocol.create_rx ();
      proto_rng = Sim.rng sim ~label:"toposense-protocol";
      task = None;
      running = true;
      was_stopped = false;
      reports_received = 0;
      suggestions_sent = 0;
      self_suppressed = 0;
      lease_suppressed = 0;
      unknown_suppressed = 0;
      summaries_sent = 0;
      invalid_snapshots = 0;
      intervals_run = 0;
      skipped_no_snapshot = 0;
      evictions = 0;
      readmissions = 0;
      retransmits = 0;
      give_ups = 0;
      stale_rejected = 0;
      acks_received = 0;
      goodbyes_received = 0;
      billing = None;
    }
  in
  let arena = Net.Network.arena network in
  Net.Network.add_local_handler network node (fun pkt ->
      if (not t.running) || Net.Packet.is_data arena pkt then ()
      else begin
      Option.iter (fun p -> Probe_discovery.handle_packet p pkt) t.probe;
      match Net.Packet.payload arena pkt with
      | Reports.Rtcp.Report r -> (
          match
            Protocol.admit t.proto_rx ~session:r.session ~node:r.receiver
              ~seq:r.seq
          with
          | Protocol.Duplicate | Protocol.Stale ->
              t.stale_rejected <- t.stale_rejected + 1
          | Protocol.Fresh ->
              Option.iter
                (fun b ->
                  Billing.record b ~session:r.session ~receiver:r.receiver
                    ~bytes:r.bytes ~level:r.level ~window:r.window)
                t.billing;
              on_report t ~session:r.session ~receiver:r.receiver
                ~level:r.level ~loss_rate:r.loss_rate ~bytes:r.bytes
                ~settling:r.settling ~sustained:r.sustained)
      | Protocol.Goodbye { session; receiver; seq } -> (
          (* Goodbyes ride the receiver's report sequence space, so a
             straggling report reordered behind the goodbye is Stale and
             cannot resurrect the membership. *)
          match Protocol.admit t.proto_rx ~session ~node:receiver ~seq with
          | Protocol.Duplicate | Protocol.Stale ->
              t.stale_rejected <- t.stale_rejected + 1
          | Protocol.Fresh -> on_goodbye t ~session ~receiver)
      | Protocol.Ack { session; receiver; seq } ->
          on_ack t ~session ~receiver ~seq
      | _ -> ()
      end);
  t

(* PR 1 removed the same quadratic [l @ [x]] pattern from [Net.Network];
   registration order still matters for deterministic interval runs, so
   the reversal happens at use, not here. *)
let add_session t session = t.sessions_rev <- session :: t.sessions_rev

let sessions t = List.rev t.sessions_rev

let remove_session t ~session =
  t.sessions_rev <-
    List.filter
      (fun s -> Traffic.Session.id s <> session)
      t.sessions_rev;
  Hashtbl.iter
    (fun (s, _) st -> if s = session then cancel_pending t st)
    t.receivers;
  Hashtbl.filter_map_inplace
    (fun (s, _) st -> if s = session then None else Some st)
    t.receivers;
  Hashtbl.remove t.known session;
  Protocol.clear_tx_session t.proto_tx ~session;
  Protocol.clear_rx_session t.proto_rx ~session;
  Algorithm.remove_session t.algorithm ~session

let set_billing t billing = t.billing <- Some billing

(* Fold the accumulated reports into per-member measures for one session
   tree; receivers whose reports were all lost keep their last loss and
   contribute zero fresh bytes. Evicted and departed members are left
   out entirely: their share of the session's demand and capacity
   evidence flows back to the survivors. *)
let session_input t session tree =
  let id = Traffic.Session.id session in
  let members =
    let all = Tree.members tree in
    (* Under [prescribe_known_only] the lease-book check comes first —
       before [receiver_state], which would otherwise allocate an entry
       per tree member and make controller state O(receivers) in worlds
       where only a sampled subset ever reports. *)
    let all =
      if not t.params.prescribe_known_only then all
      else
        match Hashtbl.find_opt t.known id with
        | None -> []
        | Some known ->
            List.filter (fun (node, _) -> Util.Bitset.mem known node) all
    in
    List.filter
      (fun (node, _) -> (receiver_state t ~session:id ~node).status = Active)
      all
  in
  let settling_tbl = t.settling_scratch in
  let settling_key node = (node lsl 21) lor id in
  let now = Sim.now (Net.Network.sim t.network) in
  let measures, levels =
    List.fold_left
      (fun (measures, levels) (node, snapshot_level) ->
        let st = receiver_state t ~session:id ~node in
        let loss, bytes =
          match st.fresh with
          | Some a ->
              let loss = a.loss_sum /. float_of_int a.report_count in
              (* Section V's bursty-vs-sustained filter: a lone lossy
                 window among clean ones is treated as a burst, not
                 congestion. *)
              let loss =
                if t.params.require_sustained_loss && not a.any_sustained
                then 0.0
                else loss
              in
              st.fresh <- None;
              st.last_loss <- loss;
              if a.settling then
                Hashtbl.replace settling_tbl (settling_key node) ();
              (loss, a.bytes)
          | None -> (st.last_loss, 0)
        in
        if snapshot_level <> st.last_level then st.level_changed_at <- now;
        st.last_level <- snapshot_level;
        ((node, (loss, bytes)) :: measures, (node, snapshot_level) :: levels))
      ([], []) members
  in
  (* The subscription walk consults [may_add] for every tree member, not
     just the measured ones — under [prescribe_known_only] gate it on the
     lease book before touching [receiver_state], or the walk would
     allocate an entry per member and quietly rebuild the O(receivers)
     footprint this mode exists to avoid. *)
  let may_add node =
    (not t.params.prescribe_known_only
    ||
    match Hashtbl.find_opt t.known id with
    | Some known -> Util.Bitset.mem known node
    | None -> false)
    &&
    let st = receiver_state t ~session:id ~node in
    Time.diff now st.level_changed_at >= Time.mul_span t.params.interval 2
  in
  {
    Algorithm.id;
    layering = Traffic.Session.layering session;
    tree;
    measures;
    levels;
    may_add;
    frozen = (fun node -> Hashtbl.mem settling_tbl (settling_key node));
  }

let debug_enabled = Sys.getenv_opt "TOPOSENSE_DEBUG" <> None

let debug_dump t inputs =
  let now = Sim.now (Net.Network.sim t.network) in
  List.iter
    (fun (input : Algorithm.session_input) ->
      Format.eprintf "@[<v>[%a] session %d@," Time.pp now input.Algorithm.id;
      List.iter
        (fun node ->
          let v = Algorithm.last_verdict t.algorithm ~session:input.id ~node in
          let d = Algorithm.demand_bps t.algorithm ~session:input.id ~node in
          let s = Algorithm.supply_bps t.algorithm ~session:input.id ~node in
          let fmt_opt ppf = function
            | Some x -> Format.fprintf ppf "%.0fk" (x /. 1000.0)
            | None -> Format.pp_print_string ppf "-"
          in
          match v with
          | Some v ->
              Format.eprintf
                "  n%d %s loss=%.3f bytes=%d demand=%a supply=%a@," node
                (if v.Congestion.congested then "CONG" else "ok  ")
                v.Congestion.loss v.Congestion.max_bytes fmt_opt d fmt_opt s
          | None -> ())
        (Tree.top_down input.tree);
      Format.eprintf "@]@.")
    inputs

(* Expired leases: a receiver silent for [lease_intervals] TopoSense
   intervals is soft-state-evicted. No event or randomness is involved,
   so the sweep is free in runs where every lease is refreshed on
   time. *)
let sweep_leases t ~now =
  let lease = Time.mul_span t.params.interval t.params.lease_intervals in
  Hashtbl.iter
    (fun _ st ->
      if st.status = Active && Time.diff now st.last_report_at > lease then begin
        t.evictions <- t.evictions + 1;
        st.status <- Evicted;
        st.fresh <- None;
        st.last_loss <- 0.0;
        cancel_pending t st
      end)
    t.receivers

let send_suggestion t ~session ~receiver ~level ~seq =
  Net.Network.originate t.network ~src:t.node
    ~dst:(Net.Addr.Unicast receiver) ~size:suggestion_size
    ~payload:(Suggestion { session; level; seq })

(* Retransmission chain for one unACKed prescription. [attempt] is the
   number of retransmissions already made when the timer fires. *)
let rec arm_retransmit t st ~session ~receiver ~seq ~level ~attempt =
  let sim = Net.Network.sim t.network in
  let span =
    Protocol.backoff_span ~params:t.params ~rng:t.proto_rng ~attempt
  in
  let handle =
    Sim.schedule_after sim span (fun () ->
        match st.pending with
        | Some p when p.seq = seq ->
            st.pending <- None;
            if t.running && st.status = Active then begin
              if attempt >= t.params.retransmit_attempts then
                t.give_ups <- t.give_ups + 1
              else begin
                t.retransmits <- t.retransmits + 1;
                send_suggestion t ~session ~receiver ~level ~seq;
                arm_retransmit t st ~session ~receiver ~seq ~level
                  ~attempt:(attempt + 1)
              end
            end
        | _ -> ())
  in
  st.pending <- Some { seq; level; attempt; handle }

let run_interval t =
  t.intervals_run <- t.intervals_run + 1;
  let sim = Net.Network.sim t.network in
  let now = Sim.now sim in
  sweep_leases t ~now;
  (* Last interval's settling marks are dead — their [frozen] closures
     were only ever consulted inside that interval's [Algorithm.step]. *)
  Hashtbl.clear t.settling_scratch;
  let inputs =
    List.filter_map
      (fun session ->
        let id = Traffic.Session.id session in
        let queried =
          match t.probe with
          | Some p -> Probe_discovery.latest p ~session:id
          | None ->
              Discovery.Service.query t.discovery ~session:id
                ~staleness:t.params.staleness
        in
        match queried with
        | None ->
            t.skipped_no_snapshot <- t.skipped_no_snapshot + 1;
            None
        | Some snap -> (
            (* Per-domain control (paper Fig. 3): this controller only
               sees and manages its own administrative domain's part of
               the session tree. *)
            let snap =
              match t.domain with
              | None -> Some snap
              | Some domain -> Discovery.Snapshot.restrict snap ~domain
            in
            match snap with
            | None ->
                t.skipped_no_snapshot <- t.skipped_no_snapshot + 1;
                None
            | Some snap when not (Discovery.Snapshot.is_tree snap) ->
                (* With faults injected the discovery image can be
                   genuinely wrong, not merely stale — e.g. a child with
                   two recorded parents mid-repair. Skip the session this
                   interval rather than acting on a non-tree. *)
                t.invalid_snapshots <- t.invalid_snapshots + 1;
                None
            | Some snap ->
                let tree = Tree.of_snapshot snap in
                Some (session_input t session tree)))
      (List.rev t.sessions_rev)
  in
  let prescriptions = Algorithm.step t.algorithm ~now inputs in
  if debug_enabled then debug_dump t inputs;
  List.iter
    (fun (p : Algorithm.prescription) ->
      if
        t.params.prescribe_known_only
        && not
             (match Hashtbl.find_opt t.known p.session with
             | Some known -> Util.Bitset.mem known p.receiver
             | None -> false)
      then
        (* Never heard from this receiver; prescribing would both waste a
           unicast and allocate state for it. (Unreachable via
           [session_input]'s filter today — this is the belt to its
           braces, and it keeps the counter honest if a future algorithm
           prescribes outside its input membership.) *)
        t.unknown_suppressed <- t.unknown_suppressed + 1
      else
      let st = receiver_state t ~session:p.session ~node:p.receiver in
      if st.status <> Active then
        (* The snapshot (possibly stale) still lists a member the lease
           or a goodbye already removed; prescribing to it would undo the
           removal. *)
        t.lease_suppressed <- t.lease_suppressed + 1
      else if p.receiver = t.node then
        (* No self-suggestions; count separately so [suggestions_sent]
           reflects packets actually put on the wire. *)
        t.self_suppressed <- t.self_suppressed + 1
      else begin
        t.suggestions_sent <- t.suggestions_sent + 1;
        let seq =
          Protocol.next_seq t.proto_tx ~session:p.session ~node:p.receiver
        in
        (* A newer prescription supersedes whatever was still awaiting an
           ACK. *)
        cancel_pending t st;
        send_suggestion t ~session:p.session ~receiver:p.receiver
          ~level:p.level ~seq;
        if t.params.reliable_prescriptions then
          arm_retransmit t st ~session:p.session ~receiver:p.receiver ~seq
            ~level:p.level ~attempt:0
      end)
    prescriptions;
  (* Federated leaf: one fixed-size per-session summary to the parent
     per interval, describing the receivers this interval's algorithm
     run actually saw. The parent's state is one slot per
     (session, domain) — O(domains) however many receivers sit here. *)
  match t.federation with
  | None -> ()
  | Some leaf ->
      List.iter
        (fun (input : Algorithm.session_input) ->
          (* One pass per list, with the loss total in a float array
             cell: unboxed storage, where three separate
             [List.fold_left]s re-boxed a float accumulator per
             element. *)
          let n = ref 0 and congested = ref 0 in
          let loss_sum = [| 0.0 |] in
          List.iter
            (fun (_, (loss, _)) ->
              incr n;
              loss_sum.(0) <- loss_sum.(0) +. loss;
              if loss >= t.params.p_threshold then incr congested)
            input.measures;
          let level_sum = ref 0 in
          List.iter (fun (_, lvl) -> level_sum := !level_sum + lvl) input.levels;
          let n = !n and congested = !congested in
          let fn = float_of_int (max 1 n) in
          t.summaries_sent <- t.summaries_sent + 1;
          Federation.send_summary leaf ~network:t.network ~src:t.node
            ~session:input.Algorithm.id ~receivers:n
            ~mean_level:(float_of_int !level_sum /. fn)
            ~mean_loss:(loss_sum.(0) /. fn) ~congested)
        inputs

let start t =
  t.running <- true;
  if t.was_stopped then begin
    t.was_stopped <- false;
    (* restart of a federated leaf: rebase the summary stream so the
       parent admits the new incarnation past its old high-water seq *)
    Option.iter Federation.rebase t.federation
  end;
  Option.iter Probe_discovery.start t.probe;
  if t.task = None then begin
    let sim = Net.Network.sim t.network in
    t.task <-
      Some (Sim.every sim ~period:t.params.interval (fun () -> run_interval t))
  end

let stop t =
  t.running <- false;
  t.was_stopped <- true;
  Option.iter Probe_discovery.stop t.probe;
  Hashtbl.iter (fun _ st -> cancel_pending t st) t.receivers;
  match t.task with
  | Some h ->
      Sim.cancel (Net.Network.sim t.network) h;
      t.task <- None
  | None -> ()

let running t = t.running
let algorithm t = t.algorithm
let reports_received t = t.reports_received
let suggestions_sent t = t.suggestions_sent
let self_suppressed t = t.self_suppressed
let lease_suppressed t = t.lease_suppressed
let unknown_suppressed t = t.unknown_suppressed
let summaries_sent t = t.summaries_sent

let known_receivers t ~session =
  match Hashtbl.find_opt t.known session with
  | None -> 0
  | Some s -> Util.Bitset.cardinal s

let receiver_state_entries t = Hashtbl.length t.receivers
let invalid_snapshots t = t.invalid_snapshots
let intervals_run t = t.intervals_run
let skipped_no_snapshot t = t.skipped_no_snapshot
let evictions t = t.evictions
let readmissions t = t.readmissions
let retransmits t = t.retransmits
let give_ups t = t.give_ups
let stale_rejected t = t.stale_rejected
let acks_received t = t.acks_received
let goodbyes_received t = t.goodbyes_received

let receiver_active t ~session ~node =
  match Hashtbl.find_opt t.receivers (session, node) with
  | None -> false
  | Some st -> st.status = Active

(* Hand a receiver back after a failover window: drop it from the lease
   book and per-receiver state so this controller stops prescribing to
   it the moment its home leaf rejoins — the no-double-prescribing half
   of the rejoin contract. The protocol seq spaces are deliberately
   kept: they must never rewind, or a later failover to the same target
   would have its first suggestions rejected as stale. *)
let forget_receiver t ~session ~receiver =
  (match Hashtbl.find_opt t.known session with
  | Some known -> Util.Bitset.remove known receiver
  | None -> ());
  match Hashtbl.find_opt t.receivers (session, receiver) with
  | None -> ()
  | Some st ->
      cancel_pending t st;
      Hashtbl.remove t.receivers (session, receiver)
