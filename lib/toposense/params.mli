(** TopoSense tuning parameters.

    The paper names the thresholds ([p_threshold], [eta_similar], the
    random back-off, the capacity re-estimation) but does not publish
    values; defaults here are the interpretation documented in DESIGN.md
    Section 3 and are exercised by the ablation benches. *)

type t = {
  interval : Engine.Time.span;
      (** period between TopoSense runs (T_{i+1} - T_i) *)
  report_interval : Engine.Time.span;
      (** period of receiver RTCP-like reports *)
  p_threshold : float;  (** loss rate above which a node is congested *)
  p_high : float;  (** "loss rate is high" (Table I, leaf history 1) *)
  p_very_high : float;  (** "loss is very high" (Table I, Greater rows) *)
  eta_similar : float;
      (** fraction of children that must have similar loss for an internal
          node to be congested *)
  similar_band : float;
      (** relative band around the mean child loss counted as "similar" *)
  bw_equal_tolerance : float;
      (** relative tolerance for the BW-equality comparison *)
  capacity_growth : float;
      (** per-interval multiplicative inflation of a capacity estimate *)
  capacity_reset_intervals : int;
      (** estimates are reset to infinity every this many intervals *)
  backoff_min : Engine.Time.span;  (** shortest random back-off *)
  backoff_max : Engine.Time.span;  (** longest random back-off *)
  suggestion_timeout_intervals : int;
      (** receiver goes unilateral after this many silent intervals *)
  staleness : Engine.Time.span;
      (** age of the topology information served to the controller *)
  deaf_period : Engine.Time.span;
      (** after a receiver drops a layer, loss is not reported for this
          long: the residual loss from queue drain and IGMP leave latency
          would otherwise read as fresh congestion and cascade the drop
          (the deaf-period idea is RLM's) *)
  require_sustained_loss : bool;
      (** when true, the controller only treats loss as congestion
          evidence if the receiver flagged it sustained (two consecutive
          lossy windows) — the bursty-vs-sustained differentiation the
          paper's Section V calls for; default false *)
  lease_intervals : int;
      (** a receiver whose last report is older than this many TopoSense
          intervals is evicted from the controller (soft-state lease);
          its bandwidth share flows back to the survivors and it is
          re-admitted cleanly on its next report *)
  reliable_prescriptions : bool;
      (** when true, prescriptions are ACKed by receivers and the
          controller retransmits unACKed ones with exponential backoff
          ({!Protocol}); off by default so no-fault runs put exactly the
          paper's packets on the wire *)
  retransmit_initial : Engine.Time.span;
      (** first retransmission delay (doubles per attempt) *)
  retransmit_max : Engine.Time.span;
      (** cap on the retransmission delay *)
  retransmit_attempts : int;
      (** give up on a prescription after this many retransmissions *)
  rlm_fallback : bool;
      (** when true, a receiver that has heard no valid prescription for
          [suggestion_timeout_intervals] switches to a standalone
          RLM-style join-experiment machine (instead of the simpler
          legacy probe/shed watchdog) and resyncs when prescriptions
          resume; off by default to keep no-fault runs byte-identical *)
  prescribe_known_only : bool;
      (** when true, the controller only prescribes to receivers it has
          actually heard a report from (a per-session known-receiver
          bitset fed by report admission). At 10k–1M receivers only a
          sampled subset runs reporting agents; without this flag the
          controller would allocate per-receiver state and unicast
          suggestions to every tree member it can see in the snapshot,
          making its footprint O(receivers) instead of O(reporters).
          Off by default — paper-scale runs prescribe from the snapshot
          alone, byte-identical to earlier revisions *)
}

val default : t
(** interval 2 s, reports 1 s, p_threshold 0.03, p_high 0.15,
    p_very_high 0.30, eta_similar 0.7, similar_band 0.25, tolerance 0.1,
    growth 0.02, reset every 15 intervals, back-off 10–30 s, suggestion
    timeout 3 intervals, staleness 0, deaf period 2.5 s, no sustained-loss
    filter, lease 10 intervals, unreliable prescriptions (retransmit
    250 ms → 8 s cap, 6 attempts when enabled), legacy watchdog
    fallback, prescriptions to all snapshot members (known-only off). *)

val validate : t -> (unit, string) result
(** Checks ranges (positive spans, thresholds in (0,1), ordered
    back-off bounds …). *)
