module Time = Engine.Time
module Layering = Traffic.Layering

type node_state = {
  mutable hist_older : bool;  (* congestion state at T0 *)
  mutable hist_middle : bool;  (* at T1 *)
  mutable hist_current : bool;  (* at T2 = the state just computed *)
  mutable bytes_older : float;  (* bytes received in [T0,T1] *)
  mutable bytes_recent : float;  (* in [T1,T2] *)
  mutable supply_older : float;  (* supply granted for [T0,T1] *)
  mutable supply_recent : float;  (* granted for [T1,T2] *)
  mutable demand : float;  (* last computed demand *)
  mutable initialized : bool;
}

type t = {
  params : Params.t;
  backoff : Backoff.t;
  states : (int * Net.Addr.node_id, node_state) Hashtbl.t;
}

let create ~params ~backoff = { params; backoff; states = Hashtbl.create 64 }

type input = {
  session : int;
  layering : Layering.t;
  tree : Tree.t;
  verdicts : (Net.Addr.node_id, Congestion.verdict) Hashtbl.t;
  level_of : Net.Addr.node_id -> int;
  may_add : Net.Addr.node_id -> bool;
  frozen : Net.Addr.node_id -> bool;
  edge_cap : Net.Addr.node_id * Net.Addr.node_id -> float;
}

let state t ~session ~node =
  match Hashtbl.find_opt t.states (session, node) with
  | Some s -> s
  | None ->
      let s =
        {
          hist_older = false;
          hist_middle = false;
          hist_current = false;
          bytes_older = 0.0;
          bytes_recent = 0.0;
          supply_older = 0.0;
          supply_recent = 0.0;
          demand = 0.0;
          initialized = false;
        }
      in
      Hashtbl.add t.states (session, node) s;
      s

let parent_congested input node =
  match Tree.parent input.tree node with
  | None -> false
  | Some p -> (Hashtbl.find input.verdicts p).Congestion.congested

(* With doubling layers "half the supply" lands exactly one level down;
   with general schedules we still convert through whole levels. *)
let level_of_bw layering bps =
  if Float.is_finite bps then Layering.level_for_bandwidth layering ~bps
  else Layering.count layering

let leaf_demand t ~now input node (st : node_state) =
  let layering = input.layering in
  let level = input.level_of node in
  let cur = Layering.cumulative_bps layering ~level in
  let verdict = Hashtbl.find input.verdicts node in
  let base = Layering.rate_bps layering ~layer:0 in
  let supply_of = function
    | Decision.Older -> if st.supply_older > 0.0 then st.supply_older else cur
    | Decision.Recent -> if st.supply_recent > 0.0 then st.supply_recent else cur
  in
  let add_next () =
    if
      level < Layering.count layering
      && input.may_add node
      && not
           (Backoff.blocked_on_path t.backoff ~session:input.session
              ~tree:input.tree ~leaf:node ~layer:level ~now)
    then Layering.cumulative_bps layering ~level:(level + 1)
    else cur
  in
  let drop_one ~set_backoff =
    if level > 1 then begin
      if set_backoff then
        Backoff.arm t.backoff ~session:input.session ~node ~layer:(level - 1)
          ~now;
      Layering.cumulative_bps layering ~level:(level - 1)
    end
    else cur
  in
  if parent_congested input node || input.frozen node then cur
  else begin
    let history =
      Decision.history_bits ~older:st.hist_older ~middle:st.hist_middle
        ~current:st.hist_current
    in
    let bw =
      Decision.classify_bw ~tolerance:t.params.bw_equal_tolerance
        ~older:st.bytes_older ~recent:st.bytes_recent
    in
    match Decision.lookup ~kind:Decision.Leaf ~history ~bw with
    | Decision.Add_next_layer -> add_next ()
    | Decision.Drop_layer_if_high_loss ->
        if verdict.Congestion.loss > t.params.p_high then
          drop_one ~set_backoff:true
        else cur
    | Decision.Maintain_demand -> cur
    | Decision.Reduce_to_supply which -> Float.max base (Float.min cur (supply_of which))
    | Decision.Reduce_to_half_supply { which; set_backoff } ->
        (* Halving is the drastic response; reserve it for genuinely high
           loss so the residue tail of an already-handled episode (just
           above p_threshold) cannot walk the subscription to the base
           layer. *)
        if verdict.Congestion.loss <= t.params.p_high then cur
        else begin
          let target = Float.max base (supply_of which /. 2.0) in
          if set_backoff && target < cur then begin
            let new_level = level_of_bw layering target in
            let dropped_top = max new_level (level - 1) in
            Backoff.arm t.backoff ~session:input.session ~node
              ~layer:dropped_top ~now
          end;
          Float.min cur target
        end
    | Decision.Reduce_to_half_supply_if_very_high_loss which ->
        if verdict.Congestion.loss > t.params.p_very_high then
          Float.max base (Float.min cur (supply_of which /. 2.0))
        else cur
    | Decision.Accept_children -> cur (* not produced for leaves *)
  end

let internal_demand t ~now input node (st : node_state) ~aggregate
    ~subtree_settling =
  let layering = input.layering in
  let base = Layering.rate_bps layering ~layer:0 in
  let supply_of = function
    | Decision.Older ->
        if st.supply_older > 0.0 then st.supply_older else aggregate
    | Decision.Recent ->
        if st.supply_recent > 0.0 then st.supply_recent else aggregate
  in
  (* While some descendant is still settling a drop, the subtree's loss
     evidence is contaminated by that adjustment (queue drain, leave
     latency, the sibling that has not yet received its suggestion);
     reducing again now is how one congestion event cascades into a crash
     to the base layer. Hold fire until the subtree is quiet. *)
  if parent_congested input node || subtree_settling then aggregate
  else begin
    let history =
      Decision.history_bits ~older:st.hist_older ~middle:st.hist_middle
        ~current:st.hist_current
    in
    let bw =
      Decision.classify_bw ~tolerance:t.params.bw_equal_tolerance
        ~older:st.bytes_older ~recent:st.bytes_recent
    in
    match Decision.lookup ~kind:Decision.Internal ~history ~bw with
    | Decision.Accept_children -> aggregate
    | Decision.Maintain_demand ->
        if st.demand > 0.0 then Float.min aggregate st.demand else aggregate
    | Decision.Reduce_to_half_supply _
      when (Hashtbl.find input.verdicts node).Congestion.loss
           <= t.params.p_high ->
        (* Same high-loss gate as at the leaves. *)
        aggregate
    | Decision.Reduce_to_half_supply { which; set_backoff = _ } ->
        let target = Float.max base (supply_of which /. 2.0) in
        let reduced = Float.min aggregate target in
        if reduced < aggregate then begin
          (* The root of the congested subtree drops: back off the highest
             layer being shed so the subtree does not re-add it at once. *)
          let old_level = level_of_bw layering aggregate in
          let new_level = level_of_bw layering reduced in
          if new_level < old_level then
            Backoff.arm t.backoff ~session:input.session ~node
              ~layer:(old_level - 1) ~now
        end;
        reduced
    | Decision.Add_next_layer
    | Decision.Drop_layer_if_high_loss
    | Decision.Reduce_to_supply _
    | Decision.Reduce_to_half_supply_if_very_high_loss _ ->
        aggregate (* leaf-only actions; not produced for internals *)
  end

let step t ~now input =
  let tree = input.tree in
  (* 1. Advance histories with this interval's verdicts and bytes. *)
  List.iter
    (fun node ->
      let st = state t ~session:input.session ~node in
      let verdict = Hashtbl.find input.verdicts node in
      if not st.initialized then begin
        st.initialized <- true;
        st.hist_older <- verdict.Congestion.congested;
        st.hist_middle <- verdict.Congestion.congested
      end
      else begin
        st.hist_older <- st.hist_middle;
        st.hist_middle <- st.hist_current
      end;
      st.hist_current <- verdict.Congestion.congested;
      st.bytes_older <- st.bytes_recent;
      st.bytes_recent <- float_of_int verdict.Congestion.max_bytes)
    (Tree.top_down tree);
  (* 2. Demand, bottom-up (also fold up which subtrees are settling). *)
  let demands = Hashtbl.create 32 in
  let settling = Hashtbl.create 32 in
  List.iter
    (fun node ->
      let st = state t ~session:input.session ~node in
      let d =
        match Tree.children tree node with
        | [] ->
            Hashtbl.replace settling node (input.frozen node);
            leaf_demand t ~now input node st
        | children ->
            let aggregate =
              List.fold_left
                (fun acc c -> Float.max acc (Hashtbl.find demands c))
                0.0 children
            in
            let subtree_settling =
              List.exists (fun c -> Hashtbl.find settling c) children
            in
            Hashtbl.replace settling node subtree_settling;
            internal_demand t ~now input node st ~aggregate ~subtree_settling
      in
      st.demand <- d;
      Hashtbl.replace demands node d)
    (Tree.bottom_up tree);
  (* 3. Supply, top-down. *)
  let supplies = Hashtbl.create 32 in
  List.iter
    (fun node ->
      let s =
        match Tree.parent tree node with
        | None -> Hashtbl.find demands node
        | Some p ->
            Float.min
              (Hashtbl.find demands node)
              (Float.min (Hashtbl.find supplies p) (input.edge_cap (p, node)))
      in
      Hashtbl.replace supplies node s;
      let st = state t ~session:input.session ~node in
      st.supply_older <- st.supply_recent;
      st.supply_recent <- s)
    (Tree.top_down tree);
  (* 4. Prescriptions for member leaves: at most one new layer per
     interval, no layer under back-off on the path. *)
  List.filter_map
    (fun (node, _snapshot_level) ->
      if not (Tree.is_leaf tree node) then None
      else begin
        let level = input.level_of node in
        let supply = Hashtbl.find supplies node in
        let affordable = level_of_bw input.layering supply in
        let target =
          if affordable > level then
            if
              Backoff.blocked_on_path t.backoff ~session:input.session ~tree
                ~leaf:node ~layer:level ~now
            then level
            else level + 1
          else if affordable < level then max affordable (min level 1)
          else level
        in
        Some (node, target)
      end)
    (List.sort compare (Tree.members tree))

let remove_session t ~session =
  Hashtbl.filter_map_inplace
    (fun (s, _) st -> if s = session then None else Some st)
    t.states

let demand_bps t ~session ~node =
  Option.map
    (fun st -> st.demand)
    (Hashtbl.find_opt t.states (session, node))

let supply_bps t ~session ~node =
  Option.map
    (fun st -> st.supply_recent)
    (Hashtbl.find_opt t.states (session, node))
