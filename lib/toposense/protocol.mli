(** Reliable-delivery layer for the TopoSense control plane.

    The paper treats reports and prescriptions as fire-and-forget: both
    are droppable packets and the receiver's unilateral watchdog is the
    only safety net. This module adds the soft-state reliability the
    architecture needs once the network itself can fail (PR 2's
    {!Net.Faults}): per-(session, node) sequence numbers on every report
    and prescription, duplicate/stale rejection on both ends, and
    exponential-backoff retransmission of unACKed prescriptions.

    Sequence spaces are independent per (session, node) pair and per
    direction — the controller's prescription numbering for a receiver is
    unrelated to that receiver's report numbering. Numbers start at 1 and
    only ever grow; eviction or fallback never rewinds them, so a
    re-admitted receiver can never be locked out by its own stale
    history.

    All randomness for retransmission jitter must come from a dedicated
    PRNG stream (the callers use ["toposense-protocol"]), so runs that
    never retransmit stay byte-identical to runs built without this
    module. *)

type Net.Packet.payload +=
  | Ack of { session : int; receiver : Net.Addr.node_id; seq : int }
        (** Receiver → controller: prescription [seq] for [session] was
            received (fresh or duplicate) at [receiver]. *)
  | Goodbye of { session : int; receiver : Net.Addr.node_id; seq : int }
        (** Receiver → controller: [receiver] has unsubscribed from
            [session]; stop prescribing to it. Stamped from the
            receiver's report sequence space. *)

val ack_size : int
(** Bytes on the wire for an ACK packet (40). *)

val goodbye_size : int
(** Bytes on the wire for a goodbye packet (40). *)

(** {1 Send side: sequence stamping} *)

type tx
(** Monotonic per-(session, node) send counters. *)

val create_tx : unit -> tx

val next_seq : tx -> session:int -> node:Net.Addr.node_id -> int
(** Allocates the next sequence number for the stream (1, 2, 3, …). *)

val last_sent : tx -> session:int -> node:Net.Addr.node_id -> int
(** Last allocated number (0 before any send). *)

val clear_tx_session : tx -> session:int -> unit
(** Drops every stream of one session (session teardown). *)

(** {1 Receive side: dup/stale rejection} *)

type rx
(** Highest-accepted sequence number per (session, node) stream. *)

type verdict =
  | Fresh  (** new-highest seq: accept and apply *)
  | Duplicate  (** seq equal to the last accepted: re-ACK, do not apply *)
  | Stale  (** seq below the last accepted: a reordered leftover, drop *)

val create_rx : unit -> rx

val admit : rx -> session:int -> node:Net.Addr.node_id -> seq:int -> verdict
(** Classifies an arriving sequence number and, when [Fresh], records it
    as the new high-water mark. Applying a message's effect iff [admit]
    says [Fresh] gives at-most-once semantics under any interleaving of
    duplication and reordering. *)

val last_accepted : rx -> session:int -> node:Net.Addr.node_id -> int
(** Current high-water mark (0 before any accept). *)

val clear_rx_session : rx -> session:int -> unit
(** Drops every stream of one session (session teardown). *)

(** {1 Retransmission backoff} *)

val backoff_span :
  params:Params.t -> rng:Engine.Prng.t -> attempt:int -> Engine.Time.span
(** Delay before retransmission number [attempt] (0-based):
    [retransmit_initial * 2^attempt], capped at [retransmit_max], then
    jittered by a uniform factor in [0.5, 1.5] drawn from [rng] — the
    caller passes the dedicated protocol stream. Always at least 1 ns so
    a retransmission never fires in the same instant it was armed. *)
