(** The domain controller agent.

    An application-level process at one node (the paper stations it at a
    source node, so its control traffic shares the congested links).
    Each interval it queries the discovery service for every registered
    session's tree — aged by [params.staleness] — folds in the receiver
    reports that arrived since the previous interval, runs
    {!Algorithm.step}, and unicasts a suggestion packet to every member
    receiver. Suggestions are real packets: they can be dropped, which is
    what the receivers' unilateral-fallback timer is for.

    Control-plane reliability ({!Protocol}): every prescription carries a
    per-(session, receiver) sequence number; incoming reports and
    goodbyes are admitted through the matching dup/stale filter. Receiver
    membership is a soft-state lease — a receiver silent for
    [params.lease_intervals] intervals is evicted (left out of the
    algorithm input and never prescribed to) and re-admitted cleanly by
    its next report. With [params.reliable_prescriptions], unACKed
    prescriptions are retransmitted with exponential backoff and jitter
    from a dedicated PRNG stream until ACKed, superseded by a newer
    prescription, or given up after [params.retransmit_attempts]. *)

type Net.Packet.payload +=
  | Suggestion of { session : int; level : int; seq : int }

val suggestion_size : int
(** Bytes on the wire for a suggestion packet (60). *)

type t

val create :
  network:Net.Network.t ->
  discovery:Discovery.Service.t ->
  params:Params.t ->
  node:Net.Addr.node_id ->
  ?domain:Net.Addr.node_id list ->
  ?probe:Probe_discovery.t ->
  ?federation:Federation.leaf ->
  unit ->
  t
(** Installs the report handler on [node]. Call {!add_session} for every
    session, then {!start}.

    With [domain], the controller manages only the given administrative
    domain (the paper's Fig. 3 model): session trees are restricted to
    the domain via {!Discovery.Snapshot.restrict}, so congestion control,
    capacity estimation and suggestions all stay domain-local. Several
    controllers with disjoint domains coexist without knowing of each
    other.

    With [probe], topology comes from in-band {!Probe_discovery} instead
    of the oracle service: the controller feeds it every packet it
    receives and reads its assembled snapshots, so the topology image is
    exactly as old, partial and lossy as real probing makes it.
    {!start} also starts the prober.

    With [federation], this controller is a leaf in a two-level
    hierarchy: each interval it additionally unicasts one
    {!Federation.Domain_summary} per session to the federation parent,
    describing the receivers it manages. Combine with [domain] and
    [params.prescribe_known_only] for scaled worlds. *)

val add_session : t -> Traffic.Session.t -> unit
(** The session must also be registered with the discovery service. *)

val sessions : t -> Traffic.Session.t list
(** Registered sessions, in registration order. *)

val remove_session : t -> session:int -> unit
(** Session teardown: unregisters the session, drops its receiver
    states (cancelling pending retransmissions), clears its
    {!Protocol} sequence spaces and calls {!Algorithm.remove_session}
    (which prunes the session's back-off timers and histories). *)

val set_billing : t -> Billing.t -> unit
(** Every receiver report is additionally folded into the billing
    record (the paper's controller-as-billing-agent use case). *)

val start : t -> unit
(** Begins the periodic algorithm runs (first run one interval from
    now). Also restarts a stopped controller: reports are heard again and
    intervals resume, picking up from whatever stale state survived the
    outage — receivers meanwhile fall back to their unilateral
    watchdog. A restart of a federated leaf also calls
    {!Federation.rebase} on its summary stream, so the parent admits the
    new incarnation and drops pre-restart stragglers. *)

val stop : t -> unit
(** Models a controller outage (or failover away from this instance):
    cancels the interval task, stops the prober, and makes the controller
    deaf to incoming reports until {!start} is called again. *)

val running : t -> bool

val algorithm : t -> Algorithm.t
(** The underlying algorithm state (diagnostics, tests, benches). *)

val reports_received : t -> int

val suggestions_sent : t -> int
(** Suggestion packets actually originated; prescriptions addressed to
    the controller's own node are counted in {!self_suppressed}
    instead. *)

val self_suppressed : t -> int
(** Prescriptions suppressed because the receiver is this node. *)

val lease_suppressed : t -> int
(** Prescriptions suppressed because the (stale) snapshot still listed a
    member whose lease expired or who said goodbye. *)

val unknown_suppressed : t -> int
(** Prescriptions suppressed under [params.prescribe_known_only] because
    the receiver never got a report through. *)

val summaries_sent : t -> int
(** {!Federation.Domain_summary} packets originated (0 without
    [federation]). *)

val known_receivers : t -> session:int -> int
(** Size of the session's known-receiver lease book (receivers an
    admitted report has ever arrived from). *)

val receiver_state_entries : t -> int
(** Per-receiver state entries currently allocated, across sessions —
    the controller's footprint. Under [prescribe_known_only] this stays
    O(reporting receivers) however large the tree is. *)

val invalid_snapshots : t -> int
(** Intervals skipped because the discovery image was not a tree (only
    possible while faults corrupt the topology image). *)

val intervals_run : t -> int
val skipped_no_snapshot : t -> int
(** Intervals where a session had no old-enough snapshot yet. *)

(** {1 Reliable-control-plane counters} *)

val evictions : t -> int
(** Receivers whose liveness lease expired. *)

val readmissions : t -> int
(** Evicted or departed receivers re-admitted by a fresh report. *)

val retransmits : t -> int
(** Prescription retransmissions (0 unless
    [params.reliable_prescriptions]). *)

val give_ups : t -> int
(** Prescriptions abandoned after [params.retransmit_attempts]
    retransmissions without an ACK. *)

val stale_rejected : t -> int
(** Reports and goodbyes dropped as duplicates or stale reorderings. *)

val acks_received : t -> int
val goodbyes_received : t -> int

val receiver_active : t -> session:int -> node:Net.Addr.node_id -> bool
(** Whether the receiver currently holds an active lease for the session
    (false if unknown, evicted or departed). *)

val forget_receiver : t -> session:int -> receiver:Net.Addr.node_id -> unit
(** Drops the receiver from the lease book and releases its per-receiver
    state (cancelling any pending retransmission). Called on a failover
    target when the receiver's home leaf rejoins, so exactly one
    controller prescribes to it afterwards. The prescription seq space
    is kept — sequences never rewind. No-op if unknown. *)
