module Time = Engine.Time

type Net.Packet.payload +=
  | Ack of { session : int; receiver : Net.Addr.node_id; seq : int }
  | Goodbye of { session : int; receiver : Net.Addr.node_id; seq : int }

let ack_size = 40
let goodbye_size = 40

type tx = (int * Net.Addr.node_id, int) Hashtbl.t

let create_tx () : tx = Hashtbl.create 64

let last_sent (t : tx) ~session ~node =
  Option.value ~default:0 (Hashtbl.find_opt t (session, node))

let next_seq (t : tx) ~session ~node =
  let seq = last_sent t ~session ~node + 1 in
  Hashtbl.replace t (session, node) seq;
  seq

let clear_tx_session (t : tx) ~session =
  Hashtbl.filter_map_inplace
    (fun (s, _) seq -> if s = session then None else Some seq)
    t

type rx = (int * Net.Addr.node_id, int) Hashtbl.t

type verdict = Fresh | Duplicate | Stale

let create_rx () : rx = Hashtbl.create 64

let last_accepted (t : rx) ~session ~node =
  Option.value ~default:0 (Hashtbl.find_opt t (session, node))

let admit (t : rx) ~session ~node ~seq =
  let high = last_accepted t ~session ~node in
  if seq > high then begin
    Hashtbl.replace t (session, node) seq;
    Fresh
  end
  else if seq = high then Duplicate
  else Stale

let clear_rx_session (t : rx) ~session =
  Hashtbl.filter_map_inplace
    (fun (s, _) seq -> if s = session then None else Some seq)
    t

let backoff_span ~(params : Params.t) ~rng ~attempt =
  let base =
    (* Doubling in integer ns overflows past attempt ~60; clamp the shift
       well before that. *)
    let shift = min attempt 30 in
    min params.retransmit_max (Int.shift_left 1 shift * params.retransmit_initial)
  in
  let jittered =
    Time.span_to_sec_f base *. Engine.Prng.uniform rng ~lo:0.5 ~hi:1.5
  in
  max 1 (Time.span_of_sec_f jittered)
